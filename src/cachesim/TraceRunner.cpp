//===- TraceRunner.cpp - drive the cache simulator from lowered IR -------===//

#include "cachesim/TraceRunner.h"

#include "cachesim/AccessProgram.h"
#include "obs/Telemetry.h"
#include "runtime/ThreadPool.h"
#include "support/Format.h"

using namespace ltp;

namespace {

/// Per-engine run counters feed the shared telemetry footer; benches used
/// to track engine selection ad hoc.
void countEngine(TraceEngine Engine, uint64_t Accesses) {
  static obs::Counter &AP = obs::counter("sim.engine.access_program");
  static obs::Counter &VM = obs::counter("sim.engine.vm");
  static obs::Counter &Ref = obs::counter("sim.engine.reference");
  static obs::Counter &Acc = obs::counter("sim.accesses");
  switch (Engine) {
  case TraceEngine::AccessProgram:
    AP.add();
    break;
  case TraceEngine::VM:
    VM.add();
    break;
  case TraceEngine::Reference:
    Ref.add();
    break;
  }
  Acc.add(static_cast<int64_t>(Accesses));
}

} // namespace

const char *ltp::traceEngineName(TraceEngine Engine) {
  switch (Engine) {
  case TraceEngine::AccessProgram:
    return "access-program";
  case TraceEngine::VM:
    return "vm";
  case TraceEngine::Reference:
    return "reference";
  }
  return "";
}

SimResult ltp::simulate(const std::vector<ir::StmtPtr> &Stmts,
                        const std::map<std::string, BufferRef> &Buffers,
                        const ArchParams &Arch, const LatencyModel &Latency,
                        SimEngine Engine) {
  obs::ScopedSpan Span("sim.simulate");
  MemoryHierarchy Hierarchy(Arch);
  SimResult Result;

  if (Engine != SimEngine::Interpreter && Engine != SimEngine::Reference) {
    if (std::optional<AccessProgram> Program =
            compileAccessProgram(Stmts, Buffers)) {
      Result.Accesses = Program->run(Hierarchy, Buffers);
      Result.FastPath = true;
      Result.Engine = TraceEngine::AccessProgram;
      Result.Stats = Hierarchy.stats();
      Result.EstimatedCycles = Hierarchy.estimatedCycles(Latency);
      countEngine(Result.Engine, Result.Accesses);
      if (Span.active())
        Span.setArgs(strFormat(
            "engine=%s accesses=%llu", traceEngineName(Result.Engine),
            static_cast<unsigned long long>(Result.Accesses)));
      return Result;
    }
  }

  uint64_t Accesses = 0;
  InterpOptions Options;
  Options.Engine = Engine == SimEngine::Reference ? InterpEngine::Reference
                                                  : InterpEngine::VM;
  Options.Hook = [&](AccessKind Kind, uint64_t Address, uint32_t Size) {
    ++Accesses;
    switch (Kind) {
    case AccessKind::Load:
      Hierarchy.load(Address, Size);
      return;
    case AccessKind::Store:
      Hierarchy.store(Address, Size, /*NonTemporal=*/false);
      return;
    case AccessKind::NonTemporalStore:
      Hierarchy.store(Address, Size, /*NonTemporal=*/true);
      return;
    }
  };
  for (const ir::StmtPtr &S : Stmts)
    interpret(S, Buffers, Options);

  Result.Engine = Engine == SimEngine::Reference ? TraceEngine::Reference
                                                 : TraceEngine::VM;
  Result.Stats = Hierarchy.stats();
  Result.EstimatedCycles = Hierarchy.estimatedCycles(Latency);
  Result.Accesses = Accesses;
  countEngine(Result.Engine, Result.Accesses);
  if (Span.active())
    Span.setArgs(strFormat("engine=%s accesses=%llu",
                           traceEngineName(Result.Engine),
                           static_cast<unsigned long long>(Result.Accesses)));
  return Result;
}

SimResult ltp::simulate(const ir::StmtPtr &S,
                        const std::map<std::string, BufferRef> &Buffers,
                        const ArchParams &Arch, const LatencyModel &Latency,
                        SimEngine Engine) {
  return simulate(std::vector<ir::StmtPtr>{S}, Buffers, Arch, Latency,
                  Engine);
}

std::vector<SimResult> ltp::simulateMany(const std::vector<SimJob> &Jobs,
                                         SimEngine Engine) {
  obs::ScopedSpan Span("sim.simulate_many", [&] {
    return strFormat("jobs=%zu", Jobs.size());
  });
  std::vector<SimResult> Results(Jobs.size());
  ThreadPool::global().parallelFor(
      0, static_cast<int64_t>(Jobs.size()), [&](int64_t I) {
        // Per-job spans make grain-claiming skew visible in the trace.
        obs::ScopedSpan JobSpan("sim.job", [&] {
          return strFormat("job=%lld", static_cast<long long>(I));
        });
        const SimJob &Job = Jobs[static_cast<size_t>(I)];
        Results[static_cast<size_t>(I)] =
            simulate(Job.Stmts, *Job.Buffers, Job.Arch, Job.Latency, Engine);
      });
  return Results;
}
