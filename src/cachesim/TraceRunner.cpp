//===- TraceRunner.cpp - drive the cache simulator from lowered IR -------===//

#include "cachesim/TraceRunner.h"

using namespace ltp;

SimResult ltp::simulate(const ir::StmtPtr &S,
                        const std::map<std::string, BufferRef> &Buffers,
                        const ArchParams &Arch,
                        const LatencyModel &Latency) {
  MemoryHierarchy Hierarchy(Arch);
  uint64_t Accesses = 0;
  InterpOptions Options;
  Options.Hook = [&](AccessKind Kind, uint64_t Address, uint32_t Size) {
    ++Accesses;
    switch (Kind) {
    case AccessKind::Load:
      Hierarchy.load(Address, Size);
      return;
    case AccessKind::Store:
      Hierarchy.store(Address, Size, /*NonTemporal=*/false);
      return;
    case AccessKind::NonTemporalStore:
      Hierarchy.store(Address, Size, /*NonTemporal=*/true);
      return;
    }
  };
  interpret(S, Buffers, Options);

  SimResult Result;
  Result.Stats = Hierarchy.stats();
  Result.EstimatedCycles = Hierarchy.estimatedCycles(Latency);
  Result.Accesses = Accesses;
  return Result;
}
