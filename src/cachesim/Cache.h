//===- Cache.h - set-associative cache with LRU replacement -----*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One level of a set-associative, write-allocate cache with true-LRU
/// replacement. Lines remember whether a prefetch brought them in so the
/// simulator can report prefetch usefulness — the quantity the paper's
/// analytical model reasons about when it "eliminates prefetched
/// references" from the cold-miss counts (Eqs. 3 and 8).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_CACHESIM_CACHE_H
#define LTP_CACHESIM_CACHE_H

#include "arch/ArchParams.h"

#include <cstdint>
#include <vector>

namespace ltp {

/// Statistics of one cache level.
struct CacheLevelStats {
  uint64_t DemandHits = 0;
  uint64_t DemandMisses = 0;
  uint64_t PrefetchFills = 0;
  /// Demand hits on lines whose last fill was a prefetch.
  uint64_t PrefetchHits = 0;
  uint64_t Evictions = 0;

  uint64_t demandAccesses() const { return DemandHits + DemandMisses; }
  double missRate() const {
    uint64_t Total = demandAccesses();
    return Total == 0 ? 0.0 : static_cast<double>(DemandMisses) / Total;
  }
};

/// Replacement policy of a cache level. Real L1/L2 caches implement
/// tree-based pseudo-LRU rather than true LRU; the simulator offers both
/// so the model's sensitivity to the policy can be measured
/// (bench/ablation_model --plru).
enum class ReplacementPolicy {
  LRU,
  TreePLRU,
};

/// A single set-associative cache level addressed by line number.
class CacheLevel {
public:
  explicit CacheLevel(const CacheParams &Params,
                      ReplacementPolicy Policy = ReplacementPolicy::LRU);

  /// Demand access to \p LineAddr. Returns true on hit. On miss the caller
  /// is responsible for accessing the next level and then calling fill().
  /// \p MarkDirty records a write for write-back accounting.
  bool access(uint64_t LineAddr, bool MarkDirty = false);

  /// True when the line is present (no state change, no statistics).
  bool probe(uint64_t LineAddr) const;

  /// Inserts \p LineAddr (LRU victim evicted). \p IsPrefetch marks the
  /// line as prefetched and counts a prefetch fill instead of a demand
  /// fill. Returns true when a dirty victim was evicted (write-back).
  bool fill(uint64_t LineAddr, bool IsPrefetch, bool Dirty = false);

  /// Removes the line if present (non-temporal store semantics).
  void invalidate(uint64_t LineAddr);

  /// Sets the dirty bit of a resident line without touching statistics
  /// or recency (write-back bookkeeping for stores already counted by a
  /// demand access).
  void markDirty(uint64_t LineAddr);

  const CacheLevelStats &stats() const { return Stats; }
  void resetStats() { Stats = CacheLevelStats(); }

  /// Credits \p Count demand hits that are pure repeats of an
  /// already-issued element-wise iteration touching \p LineAddrs (the
  /// demand lines of that iteration, in program order, \p N of them, so
  /// Count = N * repeats). Besides the counter, this replays the recency
  /// effect of the repeats exactly: every repeated access advanced the
  /// clock by one and re-touched its (resident) line, so the end state
  /// equals advancing the clock by Count with the final iteration's
  /// touches laid out on the last N ticks (see AccessProgram.h).
  void addRepeatHits(const uint64_t *LineAddrs, size_t N, uint64_t Count);

  /// Dirty lines currently resident (write-backs that must eventually
  /// reach memory).
  uint64_t countDirtyLines() const;

  int64_t numSets() const { return NumSets; }
  int64_t ways() const { return Params.Ways; }
  int64_t lineBytes() const { return Params.LineBytes; }

private:
  struct Line {
    uint64_t Tag = 0;
    bool Valid = false;
    bool Prefetched = false;
    bool Dirty = false;
    uint64_t LastUse = 0;
  };

  Line *findLine(uint64_t LineAddr);
  const Line *findLine(uint64_t LineAddr) const;

  /// Marks \p Way of \p Set most-recently-used under the active policy.
  void touch(uint64_t Set, int64_t Way);

  /// Selects the victim way of \p Set (assumes all ways valid).
  int64_t pickVictim(uint64_t Set) const;

  CacheParams Params;
  ReplacementPolicy Policy;
  int64_t NumSets;
  std::vector<Line> Lines; // NumSets * Ways, set-major
  /// Tree-PLRU state: one bit tree per set (Ways-1 internal nodes).
  std::vector<uint64_t> PlruBits;
  uint64_t Clock = 0;
  CacheLevelStats Stats;
};

} // namespace ltp

#endif // LTP_CACHESIM_CACHE_H
