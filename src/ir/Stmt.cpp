//===- Stmt.cpp - statement nodes of the loop-nest IR --------------------===//

#include "ir/Stmt.h"

using namespace ltp;
using namespace ltp::ir;

const char *ir::forKindSpelling(ForKind Kind) {
  switch (Kind) {
  case ForKind::Serial:
    return "for";
  case ForKind::Parallel:
    return "parallel for";
  case ForKind::Vectorized:
    return "vectorized for";
  case ForKind::Unrolled:
    return "unrolled for";
  case ForKind::UnrollJammed:
    return "unroll_jammed for";
  }
  assert(false && "unknown for kind");
  return "";
}

StmtPtr For::make(const std::string &VarName, ExprPtr Min, ExprPtr Extent,
                  ForKind Kind, StmtPtr Body) {
  assert(!VarName.empty() && "for loop requires a variable name");
  assert(Min && Extent && Body && "for loop requires min/extent/body");
  assert(Min->type().isInt() && Extent->type().isInt() &&
         "loop bounds must be integers");
  return StmtPtr(
      new For(VarName, std::move(Min), std::move(Extent), Kind,
              std::move(Body)));
}

StmtPtr Store::make(const std::string &BufferName,
                    std::vector<ExprPtr> Indices, ExprPtr Value,
                    bool NonTemporal) {
  assert(!BufferName.empty() && "store requires a buffer name");
  assert(!Indices.empty() && "store requires at least one index");
  assert(Value && "store requires a value");
  return StmtPtr(new Store(BufferName, std::move(Indices), std::move(Value),
                           NonTemporal));
}

StmtPtr LetStmt::make(const std::string &Name, ExprPtr Value, StmtPtr Body) {
  assert(!Name.empty() && Value && Body && "let requires name/value/body");
  return StmtPtr(new LetStmt(Name, std::move(Value), std::move(Body)));
}

StmtPtr IfThenElse::make(ExprPtr Cond, StmtPtr Then, StmtPtr Else) {
  assert(Cond && Then && "if requires a condition and a then-branch");
  assert(Cond->type().isBool() && "if condition must be boolean");
  return StmtPtr(
      new IfThenElse(std::move(Cond), std::move(Then), std::move(Else)));
}

StmtPtr Block::make(std::vector<StmtPtr> Stmts) {
  assert(!Stmts.empty() && "block requires at least one statement");
  return StmtPtr(new Block(std::move(Stmts)));
}
