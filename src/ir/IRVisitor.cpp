//===- IRVisitor.cpp - const traversal over the loop-nest IR -------------===//

#include "ir/IRVisitor.h"

using namespace ltp;
using namespace ltp::ir;

IRVisitor::~IRVisitor() = default;

void IRVisitor::visitExpr(const ExprPtr &E) {
  assert(E && "visiting a null expression");
  switch (E->kind()) {
  case ExprKind::IntImm:
    visit(exprAs<IntImm>(E));
    return;
  case ExprKind::FloatImm:
    visit(exprAs<FloatImm>(E));
    return;
  case ExprKind::VarRef:
    visit(exprAs<VarRef>(E));
    return;
  case ExprKind::Load:
    visit(exprAs<Load>(E));
    return;
  case ExprKind::Binary:
    visit(exprAs<Binary>(E));
    return;
  case ExprKind::Cast:
    visit(exprAs<Cast>(E));
    return;
  case ExprKind::Select:
    visit(exprAs<Select>(E));
    return;
  }
  assert(false && "unknown expression kind");
}

void IRVisitor::visitStmt(const StmtPtr &S) {
  assert(S && "visiting a null statement");
  switch (S->kind()) {
  case StmtKind::For:
    visit(stmtAs<For>(S));
    return;
  case StmtKind::Store:
    visit(stmtAs<Store>(S));
    return;
  case StmtKind::LetStmt:
    visit(stmtAs<LetStmt>(S));
    return;
  case StmtKind::IfThenElse:
    visit(stmtAs<IfThenElse>(S));
    return;
  case StmtKind::Block:
    visit(stmtAs<Block>(S));
    return;
  }
  assert(false && "unknown statement kind");
}

void IRVisitor::visit(const IntImm *) {}
void IRVisitor::visit(const FloatImm *) {}
void IRVisitor::visit(const VarRef *) {}

void IRVisitor::visit(const Load *Node) {
  for (const ExprPtr &Index : Node->Indices)
    visitExpr(Index);
}

void IRVisitor::visit(const Binary *Node) {
  visitExpr(Node->A);
  visitExpr(Node->B);
}

void IRVisitor::visit(const Cast *Node) { visitExpr(Node->Value); }

void IRVisitor::visit(const Select *Node) {
  visitExpr(Node->Cond);
  visitExpr(Node->TrueValue);
  visitExpr(Node->FalseValue);
}

void IRVisitor::visit(const For *Node) {
  visitExpr(Node->Min);
  visitExpr(Node->Extent);
  visitStmt(Node->Body);
}

void IRVisitor::visit(const Store *Node) {
  for (const ExprPtr &Index : Node->Indices)
    visitExpr(Index);
  visitExpr(Node->Value);
}

void IRVisitor::visit(const LetStmt *Node) {
  visitExpr(Node->Value);
  visitStmt(Node->Body);
}

void IRVisitor::visit(const IfThenElse *Node) {
  visitExpr(Node->Cond);
  visitStmt(Node->Then);
  if (Node->Else)
    visitStmt(Node->Else);
}

void IRVisitor::visit(const Block *Node) {
  for (const StmtPtr &S : Node->Stmts)
    visitStmt(S);
}
