//===- Type.h - scalar types for the loop-nest IR ---------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar element types carried by IR expressions and buffers. The data
/// type size (DTS in Table 1 of the paper) feeds directly into the cache
/// analysis, so types are tracked explicitly end to end.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_TYPE_H
#define LTP_IR_TYPE_H

#include <cassert>
#include <cstddef>
#include <string>

namespace ltp {
namespace ir {

/// Discriminator for the scalar types the IR supports.
enum class TypeKind {
  Int32,
  Int64,
  UInt8,
  UInt32,
  Float32,
  Float64,
  Bool,
};

/// A scalar element type.
class Type {
public:
  constexpr Type() : Kind(TypeKind::Int32) {}
  constexpr explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind kind() const { return Kind; }

  /// Size of one element in bytes (the DTS model parameter).
  size_t bytes() const {
    switch (Kind) {
    case TypeKind::Int32:
    case TypeKind::UInt32:
    case TypeKind::Float32:
      return 4;
    case TypeKind::Int64:
    case TypeKind::Float64:
      return 8;
    case TypeKind::UInt8:
    case TypeKind::Bool:
      return 1;
    }
    assert(false && "unknown type kind");
    return 0;
  }

  bool isFloat() const {
    return Kind == TypeKind::Float32 || Kind == TypeKind::Float64;
  }
  bool isInt() const { return !isFloat() && Kind != TypeKind::Bool; }
  bool isBool() const { return Kind == TypeKind::Bool; }

  /// Spelling of the matching C type, used by the C code generator.
  std::string cName() const {
    switch (Kind) {
    case TypeKind::Int32:
      return "int32_t";
    case TypeKind::Int64:
      return "int64_t";
    case TypeKind::UInt8:
      return "uint8_t";
    case TypeKind::UInt32:
      return "uint32_t";
    case TypeKind::Float32:
      return "float";
    case TypeKind::Float64:
      return "double";
    case TypeKind::Bool:
      return "uint8_t";
    }
    assert(false && "unknown type kind");
    return "";
  }

  /// Human-readable spelling used by the IR printer.
  std::string str() const {
    switch (Kind) {
    case TypeKind::Int32:
      return "i32";
    case TypeKind::Int64:
      return "i64";
    case TypeKind::UInt8:
      return "u8";
    case TypeKind::UInt32:
      return "u32";
    case TypeKind::Float32:
      return "f32";
    case TypeKind::Float64:
      return "f64";
    case TypeKind::Bool:
      return "bool";
    }
    assert(false && "unknown type kind");
    return "";
  }

  friend bool operator==(Type A, Type B) { return A.Kind == B.Kind; }
  friend bool operator!=(Type A, Type B) { return A.Kind != B.Kind; }

  static constexpr Type int32() { return Type(TypeKind::Int32); }
  static constexpr Type int64() { return Type(TypeKind::Int64); }
  static constexpr Type uint8() { return Type(TypeKind::UInt8); }
  static constexpr Type uint32() { return Type(TypeKind::UInt32); }
  static constexpr Type float32() { return Type(TypeKind::Float32); }
  static constexpr Type float64() { return Type(TypeKind::Float64); }
  static constexpr Type boolean() { return Type(TypeKind::Bool); }

private:
  TypeKind Kind;
};

} // namespace ir
} // namespace ltp

#endif // LTP_IR_TYPE_H
