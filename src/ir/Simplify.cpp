//===- Simplify.cpp - algebraic simplifier for the loop-nest IR ----------===//

#include "ir/Simplify.h"

#include "ir/IRMutator.h"

#include <algorithm>

using namespace ltp;
using namespace ltp::ir;

namespace {

/// Folds a binary operation over two integer constants.
int64_t foldInt(BinOp Op, int64_t A, int64_t B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    assert(B != 0 && "constant division by zero");
    return A / B;
  case BinOp::Mod:
    assert(B != 0 && "constant modulo by zero");
    return A % B;
  case BinOp::Min:
    return std::min(A, B);
  case BinOp::Max:
    return std::max(A, B);
  case BinOp::BitAnd:
    return A & B;
  case BinOp::BitOr:
    return A | B;
  case BinOp::BitXor:
    return A ^ B;
  case BinOp::LT:
    return A < B;
  case BinOp::LE:
    return A <= B;
  case BinOp::GT:
    return A > B;
  case BinOp::GE:
    return A >= B;
  case BinOp::EQ:
    return A == B;
  case BinOp::NE:
    return A != B;
  case BinOp::And:
    return (A != 0) && (B != 0);
  case BinOp::Or:
    return (A != 0) || (B != 0);
  }
  assert(false && "unknown binary operator");
  return 0;
}

/// Folds a binary operation over two floating-point constants; comparisons
/// are reported through \p IsBool.
double foldFloat(BinOp Op, double A, double B, bool &IsBool) {
  IsBool = isBooleanOp(Op);
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    return A / B;
  case BinOp::Min:
    return std::min(A, B);
  case BinOp::Max:
    return std::max(A, B);
  case BinOp::LT:
    return A < B;
  case BinOp::LE:
    return A <= B;
  case BinOp::GT:
    return A > B;
  case BinOp::GE:
    return A >= B;
  case BinOp::EQ:
    return A == B;
  case BinOp::NE:
    return A != B;
  default:
    assert(false && "operator not defined on floats");
    return 0.0;
  }
}

class SimplifyMutator : public IRMutator {
protected:
  ExprPtr mutate(const Binary *Node, const ExprPtr &Original) override {
    ExprPtr A = mutateExpr(Node->A);
    ExprPtr B = mutateExpr(Node->B);
    BinOp Op = Node->Op;

    // Constant folding.
    const IntImm *IA = exprDynAs<IntImm>(A);
    const IntImm *IB = exprDynAs<IntImm>(B);
    if (IA && IB) {
      int64_t Folded = foldInt(Op, IA->Value, IB->Value);
      if (isBooleanOp(Op))
        return IntImm::make(Folded, Type::boolean());
      return IntImm::make(Folded, A->type());
    }
    const FloatImm *FA = exprDynAs<FloatImm>(A);
    const FloatImm *FB = exprDynAs<FloatImm>(B);
    if (FA && FB) {
      bool IsBool = false;
      double Folded = foldFloat(Op, FA->Value, FB->Value, IsBool);
      if (IsBool)
        return IntImm::make(Folded != 0.0, Type::boolean());
      return FloatImm::make(Folded, A->type());
    }

    // Algebraic identities on integers (safe: no NaN concerns).
    if (A->type().isInt()) {
      if (Op == BinOp::Add && isConstInt(B, 0))
        return A;
      if (Op == BinOp::Add && isConstInt(A, 0))
        return B;
      if (Op == BinOp::Sub && isConstInt(B, 0))
        return A;
      if (Op == BinOp::Mul && isConstInt(B, 1))
        return A;
      if (Op == BinOp::Mul && isConstInt(A, 1))
        return B;
      if (Op == BinOp::Mul && (isConstInt(A, 0) || isConstInt(B, 0)))
        return IntImm::make(0, A->type());
      if (Op == BinOp::Div && isConstInt(B, 1))
        return A;
    }
    // min(x, x) and max(x, x) collapse when both sides are the same node.
    if ((Op == BinOp::Min || Op == BinOp::Max) && A == B)
      return A;

    if (A == Node->A && B == Node->B)
      return Original;
    return Binary::make(Op, std::move(A), std::move(B));
  }

  ExprPtr mutate(const Cast *Node, const ExprPtr &Original) override {
    ExprPtr Value = mutateExpr(Node->Value);
    if (const IntImm *Imm = exprDynAs<IntImm>(Value)) {
      if (Node->type().isInt()) {
        // Fold with the same wrapping the runtime cast performs, so the
        // constant stays representable in its declared type.
        int64_t V = Imm->Value;
        switch (Node->type().kind()) {
        case TypeKind::UInt8:
          V = static_cast<uint8_t>(V);
          break;
        case TypeKind::UInt32:
          V = static_cast<uint32_t>(V);
          break;
        case TypeKind::Int32:
          V = static_cast<int32_t>(V);
          break;
        default:
          break;
        }
        return IntImm::make(V, Node->type());
      }
      if (Node->type().isFloat())
        return FloatImm::make(static_cast<double>(Imm->Value), Node->type());
    }
    if (const FloatImm *Imm = exprDynAs<FloatImm>(Value)) {
      if (Node->type().isFloat())
        return FloatImm::make(Imm->Value, Node->type());
      if (Node->type().isInt())
        return IntImm::make(static_cast<int64_t>(Imm->Value), Node->type());
    }
    if (Value == Node->Value)
      return Original;
    return Cast::make(Node->type(), std::move(Value));
  }

  ExprPtr mutate(const Select *Node, const ExprPtr &Original) override {
    ExprPtr Cond = mutateExpr(Node->Cond);
    ExprPtr TrueValue = mutateExpr(Node->TrueValue);
    ExprPtr FalseValue = mutateExpr(Node->FalseValue);
    if (const IntImm *Imm = exprDynAs<IntImm>(Cond))
      return Imm->Value != 0 ? TrueValue : FalseValue;
    if (Cond == Node->Cond && TrueValue == Node->TrueValue &&
        FalseValue == Node->FalseValue)
      return Original;
    return Select::make(std::move(Cond), std::move(TrueValue),
                        std::move(FalseValue));
  }

  StmtPtr mutate(const IfThenElse *Node, const StmtPtr &Original) override {
    ExprPtr Cond = mutateExpr(Node->Cond);
    StmtPtr Then = mutateStmt(Node->Then);
    StmtPtr Else = Node->Else ? mutateStmt(Node->Else) : nullptr;
    if (const IntImm *Imm = exprDynAs<IntImm>(Cond)) {
      if (Imm->Value != 0)
        return Then;
      if (Else)
        return Else;
      // A statically-false branch with no else collapses to an empty block;
      // represent it as a zero-trip loop so the node stays well-formed.
      return For::make("_dead", IntImm::make(0), IntImm::make(0),
                       ForKind::Serial, Then);
    }
    if (Cond == Node->Cond && Then == Node->Then && Else == Node->Else)
      return Original;
    return IfThenElse::make(std::move(Cond), std::move(Then),
                            std::move(Else));
  }
};

} // namespace

ExprPtr ir::simplify(const ExprPtr &E) {
  SimplifyMutator M;
  return M.mutateExpr(E);
}

StmtPtr ir::simplify(const StmtPtr &S) {
  SimplifyMutator M;
  return M.mutateStmt(S);
}
