//===- IRVisitor.h - const traversal over the loop-nest IR ------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first visitor over expressions and statements. Subclasses override
/// the per-node hooks they care about; the default implementations recurse
/// into children.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_IRVISITOR_H
#define LTP_IR_IRVISITOR_H

#include "ir/Expr.h"
#include "ir/Stmt.h"

namespace ltp {
namespace ir {

/// Depth-first const visitor. Dispatch is manual over StmtKind/ExprKind
/// because the IR avoids RTTI.
class IRVisitor {
public:
  virtual ~IRVisitor();

  /// Dispatches on the dynamic kind of \p E.
  void visitExpr(const ExprPtr &E);

  /// Dispatches on the dynamic kind of \p S.
  void visitStmt(const StmtPtr &S);

protected:
  virtual void visit(const IntImm *Node);
  virtual void visit(const FloatImm *Node);
  virtual void visit(const VarRef *Node);
  virtual void visit(const Load *Node);
  virtual void visit(const Binary *Node);
  virtual void visit(const Cast *Node);
  virtual void visit(const Select *Node);

  virtual void visit(const For *Node);
  virtual void visit(const Store *Node);
  virtual void visit(const LetStmt *Node);
  virtual void visit(const IfThenElse *Node);
  virtual void visit(const Block *Node);
};

} // namespace ir
} // namespace ltp

#endif // LTP_IR_IRVISITOR_H
