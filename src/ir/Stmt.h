//===- Stmt.h - statement nodes of the loop-nest IR -------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes for lowered loop nests: typed counted loops (serial,
/// parallel, vectorized, unrolled), multi-dimensional stores (optionally
/// marked non-temporal — the scheduling directive this project adds to the
/// compiler, Section 4 of the paper), let bindings, conditionals and blocks.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_STMT_H
#define LTP_IR_STMT_H

#include "ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace ltp {
namespace ir {

/// Discriminator for statement nodes.
enum class StmtKind {
  For,
  Store,
  LetStmt,
  IfThenElse,
  Block,
};

/// Execution strategy of a For loop.
enum class ForKind {
  Serial,
  Parallel,
  Vectorized,
  Unrolled,
  /// Register tiling (unroll-and-jam): the loop's copies are unrolled and
  /// fused inside the loops its body contains, down to the enclosed
  /// vectorized loop. Interpreted serially; the code generator enforces
  /// the jam's legality and falls back to a plain unrolled loop.
  UnrollJammed,
};

/// Printable spelling of a ForKind.
const char *forKindSpelling(ForKind Kind);

class BaseStmtNode;

/// Shared handle to an immutable statement node.
using StmtPtr = std::shared_ptr<const BaseStmtNode>;

/// Base class of all statement nodes.
class BaseStmtNode {
public:
  explicit BaseStmtNode(StmtKind Kind) : Kind(Kind) {}
  virtual ~BaseStmtNode() = default;

  StmtKind kind() const { return Kind; }

private:
  StmtKind Kind;
};

/// Counted loop over [Min, Min + Extent).
class For : public BaseStmtNode {
public:
  std::string VarName;
  ExprPtr Min;
  ExprPtr Extent;
  ForKind Kind;
  StmtPtr Body;

  static StmtPtr make(const std::string &VarName, ExprPtr Min, ExprPtr Extent,
                      ForKind Kind, StmtPtr Body);

private:
  For(const std::string &VarName, ExprPtr Min, ExprPtr Extent, ForKind Kind,
      StmtPtr Body)
      : BaseStmtNode(StmtKind::For), VarName(VarName), Min(std::move(Min)),
        Extent(std::move(Extent)), Kind(Kind), Body(std::move(Body)) {}
};

/// Multi-dimensional store to a named buffer. When NonTemporal is set, the
/// code generator emits streaming stores that bypass the cache.
class Store : public BaseStmtNode {
public:
  std::string BufferName;
  std::vector<ExprPtr> Indices;
  ExprPtr Value;
  bool NonTemporal;

  static StmtPtr make(const std::string &BufferName,
                      std::vector<ExprPtr> Indices, ExprPtr Value,
                      bool NonTemporal = false);

private:
  Store(const std::string &BufferName, std::vector<ExprPtr> Indices,
        ExprPtr Value, bool NonTemporal)
      : BaseStmtNode(StmtKind::Store), BufferName(BufferName),
        Indices(std::move(Indices)), Value(std::move(Value)),
        NonTemporal(NonTemporal) {}
};

/// Scoped scalar binding.
class LetStmt : public BaseStmtNode {
public:
  std::string Name;
  ExprPtr Value;
  StmtPtr Body;

  static StmtPtr make(const std::string &Name, ExprPtr Value, StmtPtr Body);

private:
  LetStmt(const std::string &Name, ExprPtr Value, StmtPtr Body)
      : BaseStmtNode(StmtKind::LetStmt), Name(Name), Value(std::move(Value)),
        Body(std::move(Body)) {}
};

/// Conditional; Else may be null.
class IfThenElse : public BaseStmtNode {
public:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;

  static StmtPtr make(ExprPtr Cond, StmtPtr Then, StmtPtr Else = nullptr);

private:
  IfThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : BaseStmtNode(StmtKind::IfThenElse), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
};

/// Ordered statement sequence.
class Block : public BaseStmtNode {
public:
  std::vector<StmtPtr> Stmts;

  static StmtPtr make(std::vector<StmtPtr> Stmts);

private:
  explicit Block(std::vector<StmtPtr> Stmts)
      : BaseStmtNode(StmtKind::Block), Stmts(std::move(Stmts)) {}
};

/// Convenience downcast with no checking; the IR has no RTTI.
template <typename NodeT> const NodeT *stmtAs(const StmtPtr &S) {
  return static_cast<const NodeT *>(S.get());
}

/// Checked downcast returning nullptr on kind mismatch.
template <typename NodeT> const NodeT *stmtDynAs(const StmtPtr &S);

template <> inline const For *stmtDynAs<For>(const StmtPtr &S) {
  return S && S->kind() == StmtKind::For ? stmtAs<For>(S) : nullptr;
}
template <> inline const Store *stmtDynAs<Store>(const StmtPtr &S) {
  return S && S->kind() == StmtKind::Store ? stmtAs<Store>(S) : nullptr;
}
template <> inline const LetStmt *stmtDynAs<LetStmt>(const StmtPtr &S) {
  return S && S->kind() == StmtKind::LetStmt ? stmtAs<LetStmt>(S) : nullptr;
}
template <>
inline const IfThenElse *stmtDynAs<IfThenElse>(const StmtPtr &S) {
  return S && S->kind() == StmtKind::IfThenElse ? stmtAs<IfThenElse>(S)
                                                : nullptr;
}
template <> inline const Block *stmtDynAs<Block>(const StmtPtr &S) {
  return S && S->kind() == StmtKind::Block ? stmtAs<Block>(S) : nullptr;
}

} // namespace ir
} // namespace ltp

#endif // LTP_IR_STMT_H
