//===- Expr.h - expression nodes of the loop-nest IR ------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, reference-counted expression nodes. The IR deliberately stays
/// small: scalar arithmetic, comparisons, select, casts, variable references
/// and multi-dimensional buffer loads — exactly what the paper's benchmark
/// statements (PolyBench-style kernels, convolution, transposition) need.
///
/// Buffer loads keep their per-dimension index expressions unflattened so
/// that the access analysis in src/core can recover the affine index
/// structure (Section 3.1 of the paper) without reverse-engineering
/// linearized addressing.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_EXPR_H
#define LTP_IR_EXPR_H

#include "ir/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ltp {
namespace ir {

/// Discriminator for expression nodes.
enum class ExprKind {
  IntImm,
  FloatImm,
  VarRef,
  Load,
  Binary,
  Cast,
  Select,
};

/// Binary operators. Comparisons yield Bool; the rest yield the operand
/// type.
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Min,
  Max,
  BitAnd,
  BitOr,
  BitXor,
  LT,
  LE,
  GT,
  GE,
  EQ,
  NE,
  And,
  Or,
};

/// Returns true when \p Op is a comparison or logical operator.
bool isBooleanOp(BinOp Op);

/// Returns the C spelling of \p Op ("+", "&&", ...); Min/Max have none and
/// are expanded by the code generator.
const char *binOpSpelling(BinOp Op);

class BaseExprNode;

/// Shared handle to an immutable expression node.
using ExprPtr = std::shared_ptr<const BaseExprNode>;

/// Base class of all expression nodes.
class BaseExprNode {
public:
  BaseExprNode(ExprKind Kind, Type NodeType)
      : Kind(Kind), NodeType(NodeType) {}
  virtual ~BaseExprNode() = default;

  ExprKind kind() const { return Kind; }
  Type type() const { return NodeType; }

private:
  ExprKind Kind;
  Type NodeType;
};

/// Integer literal.
class IntImm : public BaseExprNode {
public:
  int64_t Value;

  static ExprPtr make(int64_t Value, Type T = Type::int32());

private:
  IntImm(int64_t Value, Type T)
      : BaseExprNode(ExprKind::IntImm, T), Value(Value) {}
};

/// Floating-point literal.
class FloatImm : public BaseExprNode {
public:
  double Value;

  static ExprPtr make(double Value, Type T = Type::float32());

private:
  FloatImm(double Value, Type T)
      : BaseExprNode(ExprKind::FloatImm, T), Value(Value) {}
};

/// Reference to a scalar variable (loop variable or let binding).
class VarRef : public BaseExprNode {
public:
  std::string Name;

  static ExprPtr make(const std::string &Name, Type T = Type::int32());

private:
  VarRef(const std::string &Name, Type T)
      : BaseExprNode(ExprKind::VarRef, T), Name(Name) {}
};

/// Multi-dimensional load from a named buffer. Index 0 addresses the
/// contiguous ("column") dimension, matching the Halide argument order used
/// throughout the paper.
class Load : public BaseExprNode {
public:
  std::string BufferName;
  std::vector<ExprPtr> Indices;

  static ExprPtr make(const std::string &BufferName,
                      std::vector<ExprPtr> Indices, Type T);

private:
  Load(const std::string &BufferName, std::vector<ExprPtr> Indices, Type T)
      : BaseExprNode(ExprKind::Load, T), BufferName(BufferName),
        Indices(std::move(Indices)) {}
};

/// Binary operation.
class Binary : public BaseExprNode {
public:
  BinOp Op;
  ExprPtr A;
  ExprPtr B;

  static ExprPtr make(BinOp Op, ExprPtr A, ExprPtr B);

private:
  Binary(BinOp Op, ExprPtr A, ExprPtr B, Type T)
      : BaseExprNode(ExprKind::Binary, T), Op(Op), A(std::move(A)),
        B(std::move(B)) {}
};

/// Value-preserving type conversion.
class Cast : public BaseExprNode {
public:
  ExprPtr Value;

  static ExprPtr make(Type T, ExprPtr Value);

private:
  Cast(Type T, ExprPtr Value)
      : BaseExprNode(ExprKind::Cast, T), Value(std::move(Value)) {}
};

/// Ternary select: Cond ? TrueValue : FalseValue.
class Select : public BaseExprNode {
public:
  ExprPtr Cond;
  ExprPtr TrueValue;
  ExprPtr FalseValue;

  static ExprPtr make(ExprPtr Cond, ExprPtr TrueValue, ExprPtr FalseValue);

private:
  Select(ExprPtr Cond, ExprPtr TrueValue, ExprPtr FalseValue, Type T)
      : BaseExprNode(ExprKind::Select, T), Cond(std::move(Cond)),
        TrueValue(std::move(TrueValue)), FalseValue(std::move(FalseValue)) {}
};

/// Convenience downcast with an assertion; the IR has no RTTI.
template <typename NodeT> const NodeT *exprAs(const ExprPtr &E) {
  return static_cast<const NodeT *>(E.get());
}

/// Checked downcast returning nullptr on kind mismatch.
template <typename NodeT> const NodeT *exprDynAs(const ExprPtr &E);

template <> inline const IntImm *exprDynAs<IntImm>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::IntImm ? exprAs<IntImm>(E) : nullptr;
}
template <> inline const FloatImm *exprDynAs<FloatImm>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::FloatImm ? exprAs<FloatImm>(E) : nullptr;
}
template <> inline const VarRef *exprDynAs<VarRef>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::VarRef ? exprAs<VarRef>(E) : nullptr;
}
template <> inline const Load *exprDynAs<Load>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::Load ? exprAs<Load>(E) : nullptr;
}
template <> inline const Binary *exprDynAs<Binary>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::Binary ? exprAs<Binary>(E) : nullptr;
}
template <> inline const Cast *exprDynAs<Cast>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::Cast ? exprAs<Cast>(E) : nullptr;
}
template <> inline const Select *exprDynAs<Select>(const ExprPtr &E) {
  return E && E->kind() == ExprKind::Select ? exprAs<Select>(E) : nullptr;
}

/// Returns true when \p E is an IntImm equal to \p Value.
bool isConstInt(const ExprPtr &E, int64_t Value);

/// If \p E is an IntImm, returns its value.
std::optional<int64_t> asConstInt(const ExprPtr &E);

} // namespace ir
} // namespace ltp

#endif // LTP_IR_EXPR_H
