//===- Expr.cpp - expression nodes of the loop-nest IR -------------------===//

#include "ir/Expr.h"

using namespace ltp;
using namespace ltp::ir;

bool ir::isBooleanOp(BinOp Op) {
  switch (Op) {
  case BinOp::LT:
  case BinOp::LE:
  case BinOp::GT:
  case BinOp::GE:
  case BinOp::EQ:
  case BinOp::NE:
  case BinOp::And:
  case BinOp::Or:
    return true;
  default:
    return false;
  }
}

const char *ir::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::Min:
    return "min";
  case BinOp::Max:
    return "max";
  case BinOp::BitAnd:
    return "&";
  case BinOp::BitOr:
    return "|";
  case BinOp::BitXor:
    return "^";
  case BinOp::LT:
    return "<";
  case BinOp::LE:
    return "<=";
  case BinOp::GT:
    return ">";
  case BinOp::GE:
    return ">=";
  case BinOp::EQ:
    return "==";
  case BinOp::NE:
    return "!=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  assert(false && "unknown binary operator");
  return "";
}

ExprPtr IntImm::make(int64_t Value, Type T) {
  assert((T.isInt() || T.isBool()) &&
         "IntImm requires an integer or boolean type");
  return ExprPtr(new IntImm(Value, T));
}

ExprPtr FloatImm::make(double Value, Type T) {
  assert(T.isFloat() && "FloatImm requires a float type");
  return ExprPtr(new FloatImm(Value, T));
}

ExprPtr VarRef::make(const std::string &Name, Type T) {
  assert(!Name.empty() && "variable reference requires a name");
  return ExprPtr(new VarRef(Name, T));
}

ExprPtr Load::make(const std::string &BufferName, std::vector<ExprPtr> Indices,
                   Type T) {
  assert(!BufferName.empty() && "load requires a buffer name");
  assert(!Indices.empty() && "load requires at least one index");
  return ExprPtr(new Load(BufferName, std::move(Indices), T));
}

ExprPtr Binary::make(BinOp Op, ExprPtr A, ExprPtr B) {
  assert(A && B && "binary operands must be non-null");
  assert(A->type() == B->type() && "binary operands must agree on type");
  Type ResultType = isBooleanOp(Op) ? Type::boolean() : A->type();
  return ExprPtr(new Binary(Op, std::move(A), std::move(B), ResultType));
}

ExprPtr Cast::make(Type T, ExprPtr Value) {
  assert(Value && "cast operand must be non-null");
  if (Value->type() == T)
    return Value;
  return ExprPtr(new Cast(T, std::move(Value)));
}

ExprPtr Select::make(ExprPtr Cond, ExprPtr TrueValue, ExprPtr FalseValue) {
  assert(Cond && TrueValue && FalseValue && "select operands non-null");
  assert(Cond->type().isBool() && "select condition must be boolean");
  assert(TrueValue->type() == FalseValue->type() &&
         "select arms must agree on type");
  Type T = TrueValue->type();
  return ExprPtr(new Select(std::move(Cond), std::move(TrueValue),
                            std::move(FalseValue), T));
}

bool ir::isConstInt(const ExprPtr &E, int64_t Value) {
  const IntImm *Imm = exprDynAs<IntImm>(E);
  return Imm && Imm->Value == Value;
}

std::optional<int64_t> ir::asConstInt(const ExprPtr &E) {
  if (const IntImm *Imm = exprDynAs<IntImm>(E))
    return Imm->Value;
  return std::nullopt;
}
