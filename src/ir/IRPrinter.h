//===- IRPrinter.h - human-readable dump of the loop-nest IR ----*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printer producing stable, golden-testable text for lowered loop
/// nests and expressions.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_IRPRINTER_H
#define LTP_IR_IRPRINTER_H

#include "ir/Expr.h"
#include "ir/Stmt.h"

#include <string>

namespace ltp {
namespace ir {

/// Renders \p E as a single-line expression string.
std::string printExpr(const ExprPtr &E);

/// Renders \p S as an indented multi-line loop-nest listing.
std::string printStmt(const StmtPtr &S);

} // namespace ir
} // namespace ltp

#endif // LTP_IR_IRPRINTER_H
