//===- IRMutator.h - rebuilding traversal over the IR -----------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rebuilding visitor: returns a (possibly shared) new tree. Default hooks
/// reconstruct nodes only when a child changed, so unchanged subtrees are
/// shared with the input.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_IRMUTATOR_H
#define LTP_IR_IRMUTATOR_H

#include "ir/Expr.h"
#include "ir/Stmt.h"

#include <map>

namespace ltp {
namespace ir {

/// Rebuilding traversal over expressions and statements.
class IRMutator {
public:
  virtual ~IRMutator();

  /// Dispatches on the dynamic kind of \p E and returns the rewritten tree.
  ExprPtr mutateExpr(const ExprPtr &E);

  /// Dispatches on the dynamic kind of \p S and returns the rewritten tree.
  StmtPtr mutateStmt(const StmtPtr &S);

protected:
  virtual ExprPtr mutate(const IntImm *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const FloatImm *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const VarRef *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const Load *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const Binary *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const Cast *Node, const ExprPtr &Original);
  virtual ExprPtr mutate(const Select *Node, const ExprPtr &Original);

  virtual StmtPtr mutate(const For *Node, const StmtPtr &Original);
  virtual StmtPtr mutate(const Store *Node, const StmtPtr &Original);
  virtual StmtPtr mutate(const LetStmt *Node, const StmtPtr &Original);
  virtual StmtPtr mutate(const IfThenElse *Node, const StmtPtr &Original);
  virtual StmtPtr mutate(const Block *Node, const StmtPtr &Original);
};

/// Substitutes variable references by name.
///
/// Returns \p E (or \p S) with every VarRef whose name appears in the
/// replacement map swapped for the mapped expression. Loop variables bound
/// by an inner For of the same name shadow the substitution.
ExprPtr substitute(const ExprPtr &E,
                   const std::map<std::string, ExprPtr> &Replacements);
StmtPtr substitute(const StmtPtr &S,
                   const std::map<std::string, ExprPtr> &Replacements);

} // namespace ir
} // namespace ltp

#endif // LTP_IR_IRMUTATOR_H
