//===- IRPrinter.cpp - human-readable dump of the loop-nest IR -----------===//

#include "ir/IRPrinter.h"

#include "support/Format.h"

#include <sstream>

using namespace ltp;
using namespace ltp::ir;

namespace {

std::string printExprImpl(const ExprPtr &E);

std::string printIndices(const std::vector<ExprPtr> &Indices) {
  std::vector<std::string> Parts;
  Parts.reserve(Indices.size());
  for (const ExprPtr &Index : Indices)
    Parts.push_back(printExprImpl(Index));
  return join(Parts, ", ");
}

std::string printExprImpl(const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::IntImm:
    return std::to_string(exprAs<IntImm>(E)->Value);
  case ExprKind::FloatImm: {
    std::ostringstream OS;
    OS << exprAs<FloatImm>(E)->Value;
    std::string S = OS.str();
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos &&
        S.find("inf") == std::string::npos &&
        S.find("nan") == std::string::npos)
      S += ".0";
    if (E->type() == Type::float32())
      S += "f";
    return S;
  }
  case ExprKind::VarRef:
    return exprAs<VarRef>(E)->Name;
  case ExprKind::Load: {
    const Load *L = exprAs<Load>(E);
    return L->BufferName + "(" + printIndices(L->Indices) + ")";
  }
  case ExprKind::Binary: {
    const Binary *B = exprAs<Binary>(E);
    if (B->Op == BinOp::Min || B->Op == BinOp::Max)
      return std::string(binOpSpelling(B->Op)) + "(" + printExprImpl(B->A) +
             ", " + printExprImpl(B->B) + ")";
    return "(" + printExprImpl(B->A) + " " + binOpSpelling(B->Op) + " " +
           printExprImpl(B->B) + ")";
  }
  case ExprKind::Cast:
    return std::string("cast<") + E->type().str() + ">(" +
           printExprImpl(exprAs<Cast>(E)->Value) + ")";
  case ExprKind::Select: {
    const Select *S = exprAs<Select>(E);
    return "select(" + printExprImpl(S->Cond) + ", " +
           printExprImpl(S->TrueValue) + ", " +
           printExprImpl(S->FalseValue) + ")";
  }
  }
  assert(false && "unknown expression kind");
  return "";
}

void printStmtImpl(const StmtPtr &S, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  switch (S->kind()) {
  case StmtKind::For: {
    const For *F = stmtAs<For>(S);
    Out += Pad + forKindSpelling(F->Kind) + " " + F->VarName + " in [" +
           printExprImpl(F->Min) + ", " + printExprImpl(F->Min) + " + " +
           printExprImpl(F->Extent) + ") {\n";
    printStmtImpl(F->Body, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  case StmtKind::Store: {
    const Store *St = stmtAs<Store>(S);
    Out += Pad + St->BufferName + "(" + printIndices(St->Indices) +
           ") = " + printExprImpl(St->Value);
    if (St->NonTemporal)
      Out += "  // non-temporal";
    Out += "\n";
    return;
  }
  case StmtKind::LetStmt: {
    const LetStmt *L = stmtAs<LetStmt>(S);
    Out += Pad + "let " + L->Name + " = " + printExprImpl(L->Value) + " in\n";
    printStmtImpl(L->Body, Indent, Out);
    return;
  }
  case StmtKind::IfThenElse: {
    const IfThenElse *I = stmtAs<IfThenElse>(S);
    Out += Pad + "if " + printExprImpl(I->Cond) + " {\n";
    printStmtImpl(I->Then, Indent + 1, Out);
    if (I->Else) {
      Out += Pad + "} else {\n";
      printStmtImpl(I->Else, Indent + 1, Out);
    }
    Out += Pad + "}\n";
    return;
  }
  case StmtKind::Block: {
    for (const StmtPtr &Child : stmtAs<Block>(S)->Stmts)
      printStmtImpl(Child, Indent, Out);
    return;
  }
  }
  assert(false && "unknown statement kind");
}

} // namespace

std::string ir::printExpr(const ExprPtr &E) {
  assert(E && "printing a null expression");
  return printExprImpl(E);
}

std::string ir::printStmt(const StmtPtr &S) {
  assert(S && "printing a null statement");
  std::string Out;
  printStmtImpl(S, 0, Out);
  return Out;
}
