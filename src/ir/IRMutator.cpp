//===- IRMutator.cpp - rebuilding traversal over the IR ------------------===//

#include "ir/IRMutator.h"

#include <set>

using namespace ltp;
using namespace ltp::ir;

IRMutator::~IRMutator() = default;

ExprPtr IRMutator::mutateExpr(const ExprPtr &E) {
  assert(E && "mutating a null expression");
  switch (E->kind()) {
  case ExprKind::IntImm:
    return mutate(exprAs<IntImm>(E), E);
  case ExprKind::FloatImm:
    return mutate(exprAs<FloatImm>(E), E);
  case ExprKind::VarRef:
    return mutate(exprAs<VarRef>(E), E);
  case ExprKind::Load:
    return mutate(exprAs<Load>(E), E);
  case ExprKind::Binary:
    return mutate(exprAs<Binary>(E), E);
  case ExprKind::Cast:
    return mutate(exprAs<Cast>(E), E);
  case ExprKind::Select:
    return mutate(exprAs<Select>(E), E);
  }
  assert(false && "unknown expression kind");
  return E;
}

StmtPtr IRMutator::mutateStmt(const StmtPtr &S) {
  assert(S && "mutating a null statement");
  switch (S->kind()) {
  case StmtKind::For:
    return mutate(stmtAs<For>(S), S);
  case StmtKind::Store:
    return mutate(stmtAs<Store>(S), S);
  case StmtKind::LetStmt:
    return mutate(stmtAs<LetStmt>(S), S);
  case StmtKind::IfThenElse:
    return mutate(stmtAs<IfThenElse>(S), S);
  case StmtKind::Block:
    return mutate(stmtAs<Block>(S), S);
  }
  assert(false && "unknown statement kind");
  return S;
}

ExprPtr IRMutator::mutate(const IntImm *, const ExprPtr &Original) {
  return Original;
}
ExprPtr IRMutator::mutate(const FloatImm *, const ExprPtr &Original) {
  return Original;
}
ExprPtr IRMutator::mutate(const VarRef *, const ExprPtr &Original) {
  return Original;
}

ExprPtr IRMutator::mutate(const Load *Node, const ExprPtr &Original) {
  bool Changed = false;
  std::vector<ExprPtr> Indices;
  Indices.reserve(Node->Indices.size());
  for (const ExprPtr &Index : Node->Indices) {
    ExprPtr NewIndex = mutateExpr(Index);
    Changed |= NewIndex != Index;
    Indices.push_back(std::move(NewIndex));
  }
  if (!Changed)
    return Original;
  return Load::make(Node->BufferName, std::move(Indices), Node->type());
}

ExprPtr IRMutator::mutate(const Binary *Node, const ExprPtr &Original) {
  ExprPtr A = mutateExpr(Node->A);
  ExprPtr B = mutateExpr(Node->B);
  if (A == Node->A && B == Node->B)
    return Original;
  return Binary::make(Node->Op, std::move(A), std::move(B));
}

ExprPtr IRMutator::mutate(const Cast *Node, const ExprPtr &Original) {
  ExprPtr Value = mutateExpr(Node->Value);
  if (Value == Node->Value)
    return Original;
  return Cast::make(Node->type(), std::move(Value));
}

ExprPtr IRMutator::mutate(const Select *Node, const ExprPtr &Original) {
  ExprPtr Cond = mutateExpr(Node->Cond);
  ExprPtr TrueValue = mutateExpr(Node->TrueValue);
  ExprPtr FalseValue = mutateExpr(Node->FalseValue);
  if (Cond == Node->Cond && TrueValue == Node->TrueValue &&
      FalseValue == Node->FalseValue)
    return Original;
  return Select::make(std::move(Cond), std::move(TrueValue),
                      std::move(FalseValue));
}

StmtPtr IRMutator::mutate(const For *Node, const StmtPtr &Original) {
  ExprPtr Min = mutateExpr(Node->Min);
  ExprPtr Extent = mutateExpr(Node->Extent);
  StmtPtr Body = mutateStmt(Node->Body);
  if (Min == Node->Min && Extent == Node->Extent && Body == Node->Body)
    return Original;
  return For::make(Node->VarName, std::move(Min), std::move(Extent),
                   Node->Kind, std::move(Body));
}

StmtPtr IRMutator::mutate(const Store *Node, const StmtPtr &Original) {
  bool Changed = false;
  std::vector<ExprPtr> Indices;
  Indices.reserve(Node->Indices.size());
  for (const ExprPtr &Index : Node->Indices) {
    ExprPtr NewIndex = mutateExpr(Index);
    Changed |= NewIndex != Index;
    Indices.push_back(std::move(NewIndex));
  }
  ExprPtr Value = mutateExpr(Node->Value);
  Changed |= Value != Node->Value;
  if (!Changed)
    return Original;
  return Store::make(Node->BufferName, std::move(Indices), std::move(Value),
                     Node->NonTemporal);
}

StmtPtr IRMutator::mutate(const LetStmt *Node, const StmtPtr &Original) {
  ExprPtr Value = mutateExpr(Node->Value);
  StmtPtr Body = mutateStmt(Node->Body);
  if (Value == Node->Value && Body == Node->Body)
    return Original;
  return LetStmt::make(Node->Name, std::move(Value), std::move(Body));
}

StmtPtr IRMutator::mutate(const IfThenElse *Node, const StmtPtr &Original) {
  ExprPtr Cond = mutateExpr(Node->Cond);
  StmtPtr Then = mutateStmt(Node->Then);
  StmtPtr Else = Node->Else ? mutateStmt(Node->Else) : nullptr;
  if (Cond == Node->Cond && Then == Node->Then && Else == Node->Else)
    return Original;
  return IfThenElse::make(std::move(Cond), std::move(Then), std::move(Else));
}

StmtPtr IRMutator::mutate(const Block *Node, const StmtPtr &Original) {
  bool Changed = false;
  std::vector<StmtPtr> Stmts;
  Stmts.reserve(Node->Stmts.size());
  for (const StmtPtr &S : Node->Stmts) {
    StmtPtr NewS = mutateStmt(S);
    Changed |= NewS != S;
    Stmts.push_back(std::move(NewS));
  }
  if (!Changed)
    return Original;
  return Block::make(std::move(Stmts));
}

namespace {

/// Shadowing-aware variable substitution.
class SubstituteMutator : public IRMutator {
public:
  explicit SubstituteMutator(const std::map<std::string, ExprPtr> &Map)
      : Replacements(Map) {}

protected:
  ExprPtr mutate(const VarRef *Node, const ExprPtr &Original) override {
    auto It = Replacements.find(Node->Name);
    if (It == Replacements.end() || Shadowed.contains(Node->Name))
      return Original;
    return It->second;
  }

  StmtPtr mutate(const For *Node, const StmtPtr &Original) override {
    // The loop variable shadows any replacement of the same name inside the
    // loop body (but not inside the bounds, which are evaluated outside).
    ExprPtr Min = mutateExpr(Node->Min);
    ExprPtr Extent = mutateExpr(Node->Extent);
    bool WasShadowed = !Shadowed.insert(Node->VarName).second;
    StmtPtr Body = mutateStmt(Node->Body);
    if (!WasShadowed)
      Shadowed.erase(Node->VarName);
    if (Min == Node->Min && Extent == Node->Extent && Body == Node->Body)
      return Original;
    return For::make(Node->VarName, std::move(Min), std::move(Extent),
                     Node->Kind, std::move(Body));
  }

  StmtPtr mutate(const LetStmt *Node, const StmtPtr &Original) override {
    ExprPtr Value = mutateExpr(Node->Value);
    bool WasShadowed = !Shadowed.insert(Node->Name).second;
    StmtPtr Body = mutateStmt(Node->Body);
    if (!WasShadowed)
      Shadowed.erase(Node->Name);
    if (Value == Node->Value && Body == Node->Body)
      return Original;
    return LetStmt::make(Node->Name, std::move(Value), std::move(Body));
  }

private:
  const std::map<std::string, ExprPtr> &Replacements;
  std::set<std::string> Shadowed;
};

} // namespace

ExprPtr ir::substitute(const ExprPtr &E,
                       const std::map<std::string, ExprPtr> &Replacements) {
  SubstituteMutator M(Replacements);
  return M.mutateExpr(E);
}

StmtPtr ir::substitute(const StmtPtr &S,
                       const std::map<std::string, ExprPtr> &Replacements) {
  SubstituteMutator M(Replacements);
  return M.mutateStmt(S);
}
