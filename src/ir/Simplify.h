//===- Simplify.h - algebraic simplifier for the loop-nest IR ---*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up constant folding and algebraic identity rewriting. Lowering
/// produces bounds expressions such as `min(T, B - t*T)`; the simplifier
/// collapses them when the tile size divides the bounds so the generated C
/// code and the printed loop nests stay readable, and so the interpreter
/// does less work per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_IR_SIMPLIFY_H
#define LTP_IR_SIMPLIFY_H

#include "ir/Expr.h"
#include "ir/Stmt.h"

namespace ltp {
namespace ir {

/// Returns an algebraically simplified equivalent of \p E.
ExprPtr simplify(const ExprPtr &E);

/// Returns \p S with every contained expression simplified. Conditionals
/// with constant conditions are resolved; loops with zero extent are
/// dropped when they appear inside a block with siblings.
StmtPtr simplify(const StmtPtr &S);

} // namespace ir
} // namespace ltp

#endif // LTP_IR_SIMPLIFY_H
