//===- ArgParse.cpp - tiny command-line flag parser -----------------------===//

#include "support/ArgParse.h"

#include <cstdlib>

using namespace ltp;

ArgParse::ArgParse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Flags[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    // `--key value` form: consume the next token as the value when it does
    // not itself look like a flag.
    if (I + 1 < Argc && std::string(Argv[I + 1]).rfind("--", 0) != 0) {
      Flags[Body] = Argv[I + 1];
      ++I;
    } else {
      Flags[Body] = "";
    }
  }
}

bool ArgParse::has(const std::string &Name) const {
  return Flags.contains(Name);
}

std::string ArgParse::getString(const std::string &Name,
                                const std::string &Default) const {
  auto It = Flags.find(Name);
  return It == Flags.end() ? Default : It->second;
}

long ArgParse::getInt(const std::string &Name, long Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtol(It->second.c_str(), nullptr, 10);
}

double ArgParse::getDouble(const std::string &Name, double Default) const {
  auto It = Flags.find(Name);
  if (It == Flags.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}
