//===- Format.cpp - printf-style string formatting helpers ---------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace ltp;

std::string ltp::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string ltp::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string ltp::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string ltp::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
