//===- ErrorOr.h - lightweight value-or-error wrapper -----------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Expected-style wrapper used to report recoverable errors (such
/// as a failed JIT compilation) without exceptions, following the LLVM error
/// handling philosophy. Programmatic errors use assert instead.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SUPPORT_ERROROR_H
#define LTP_SUPPORT_ERROROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ltp {

/// Holds either a value of type \p T or a human-readable error message.
///
/// The error message style follows LLVM conventions: lowercase first word,
/// no trailing period.
template <typename T> class ErrorOr {
public:
  /// Constructs a success value.
  ErrorOr(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure value carrying \p Message.
  static ErrorOr<T> makeError(std::string Message) {
    ErrorOr<T> E;
    E.Message = std::move(Message);
    return E;
  }

  /// True when a value is present.
  explicit operator bool() const { return Value.has_value(); }

  /// Returns the contained value; must only be called on success.
  T &get() {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }
  const T &get() const {
    assert(Value && "accessing value of failed ErrorOr");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Returns the error message; empty on success.
  const std::string &getError() const { return Message; }

private:
  ErrorOr() = default;

  std::optional<T> Value;
  std::string Message;
};

} // namespace ltp

#endif // LTP_SUPPORT_ERROROR_H
