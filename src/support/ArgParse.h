//===- ArgParse.h - tiny command-line flag parser ---------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal flag parser shared by the benchmark harnesses and examples.
/// Supports `--flag`, `--key=value` and `--key value` forms.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SUPPORT_ARGPARSE_H
#define LTP_SUPPORT_ARGPARSE_H

#include <map>
#include <string>
#include <vector>

namespace ltp {

/// Parsed command-line flags with typed accessors and defaults.
class ArgParse {
public:
  ArgParse(int Argc, const char *const *Argv);

  /// True if `--name` was passed (with or without a value).
  bool has(const std::string &Name) const;

  /// Value of `--name`, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;

  /// Integer value of `--name`, or \p Default when absent.
  long getInt(const std::string &Name, long Default) const;

  /// Floating-point value of `--name`, or \p Default when absent.
  double getDouble(const std::string &Name, double Default) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

} // namespace ltp

#endif // LTP_SUPPORT_ARGPARSE_H
