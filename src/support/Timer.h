//===- Timer.h - wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer used by the benchmark harness and by the optimizer
/// runtime measurements (Table 5 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SUPPORT_TIMER_H
#define LTP_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace ltp {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction or the last reset, in seconds.
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn \p Repeats times and returns the minimum elapsed seconds.
///
/// The minimum over repeats is the standard noise-robust estimator for
/// memory-bound kernels on a shared machine.
template <typename Fn>
double timeBestOf(unsigned Repeats, Fn &&Callback) {
  double Best = -1.0;
  for (unsigned I = 0; I != Repeats; ++I) {
    Timer T;
    Callback();
    double Elapsed = T.elapsedSeconds();
    if (Best < 0.0 || Elapsed < Best)
      Best = Elapsed;
  }
  return Best;
}

} // namespace ltp

#endif // LTP_SUPPORT_TIMER_H
