//===- Format.h - printf-style string formatting helpers -------*- C++ -*-===//
//
// Part of the LTP project: loop transformations leveraging hardware
// prefetching (reproduction of Sioutas et al., CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting utilities used across the project in place of
/// iostream-based formatting, which is forbidden in library code.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SUPPORT_FORMAT_H
#define LTP_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace ltp {

/// Formats \p Fmt with printf semantics into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns \p S left-padded with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, unsigned Width);

/// Returns \p S right-padded with spaces to at least \p Width characters.
std::string padRight(const std::string &S, unsigned Width);

} // namespace ltp

#endif // LTP_SUPPORT_FORMAT_H
