//===- ArchParams.h - architecture parameters (Tables 1 and 3) --*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architecture-specific parameters of Table 1 of the paper, with the
/// three experimental platforms of Table 3 as presets. The prefetcher
/// parameters (L2 prefetches per access and the maximum prefetch distance,
/// "usually 20 for Intel processors") drive both the analytical model
/// (Algorithm 1) and the cache simulator.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_ARCH_ARCHPARAMS_H
#define LTP_ARCH_ARCHPARAMS_H

#include <cstdint>
#include <string>

namespace ltp {

/// Parameters of one cache level.
struct CacheParams {
  int64_t SizeBytes = 0;
  int64_t LineBytes = 64;
  int64_t Ways = 8;

  int64_t numSets() const {
    return SizeBytes / (Ways * LineBytes);
  }
};

/// Architecture description consumed by the optimizer and the simulator.
struct ArchParams {
  std::string Name;

  CacheParams L1;
  CacheParams L2;
  /// L3 (shared LLC); SizeBytes == 0 means no L3 (the ARM platform).
  CacheParams L3;

  int NCores = 1;
  /// Hardware threads per core (SMT).
  int NThreadsPerCore = 1;
  /// Native SIMD width in elements of a 4-byte type (8 for AVX2, 4 for
  /// NEON/SSE).
  int VectorWidth = 8;
  /// True when the ISA offers vector stores with non-temporal hints.
  bool HasNonTemporalStores = true;
  /// True when the L2 cache is shared between cores rather than private
  /// (the Cortex-A15 case; changes the effective associativity divisor in
  /// Algorithm 2 from NThreadsPerCore to NCores, Section 5.1).
  bool SharedL2 = false;

  /// L1 next-line (streaming) prefetcher present. Disabling it models a
  /// prefetcher-less machine — the configuration prior analytical models
  /// implicitly assume (useful for ablations and model validation).
  bool L1NextLinePrefetcher = true;
  /// L2 constant-stride prefetcher: lines fetched per triggering access
  /// (0 disables the streamer).
  int L2PrefetchDegree = 2;
  /// Maximum distance (in cache lines) between the demand reference and
  /// the prefetched line ("usually 20 for Intel processors").
  int L2MaxPrefetchDistance = 20;
  /// Number of distinct access streams (trains) the L2 streamer tracks
  /// concurrently; streams beyond this evict tracker entries and stop
  /// being prefetched (32 forward streams on Intel server/client cores).
  int L2StreamerTrains = 32;
  /// Architectural vector register count visible to the compiler (16 for
  /// SSE/AVX in 64-bit mode, 16 q-registers for NEON). Bounds the
  /// unroll_jam accumulator footprint before spilling.
  int VectorRegisters = 16;

  /// Relative access-time weights used by the cost function (Eq. 11):
  /// a2 = L2 access cost, a3 = L3/memory access cost.
  double A2 = 1.0;
  double A3 = 4.0;

  /// Total hardware threads.
  int totalThreads() const { return NCores * NThreadsPerCore; }
};

/// Table 3 presets.
ArchParams intelI7_6700();
ArchParams intelI7_5930K();
ArchParams armCortexA15();

/// Detects the host machine's cache hierarchy from sysfs; falls back to
/// i7-6700-like defaults for fields that cannot be read.
ArchParams detectHost();

/// Renders the parameters as a one-line summary for bench headers.
std::string describe(const ArchParams &Arch);

} // namespace ltp

#endif // LTP_ARCH_ARCHPARAMS_H
