//===- ArchFile.h - platform description files ------------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads and saves ArchParams as simple `key = value` files so new target
/// platforms can be described without recompiling — the optimizer is
/// supposed to run *without access to the target machine* (a selling
/// point of analytical models the paper emphasizes against autotuning).
///
/// Format (sizes accept K/M suffixes; `#` starts a comment):
///
///   name = Intel i7-6700
///   l1.size = 32K
///   l1.ways = 8
///   l1.line = 64
///   l2.size = 256K
///   l2.ways = 8
///   l3.size = 8M        # 0 = no L3
///   l3.ways = 16
///   cores = 4
///   threads_per_core = 2
///   vector_width = 8
///   nt_stores = true
///   shared_l2 = false
///   l1_next_line_prefetcher = true
///   l2_prefetch_degree = 2
///   l2_max_prefetch_distance = 20
///   a2 = 1.0
///   a3 = 4.0
///
//===----------------------------------------------------------------------===//

#ifndef LTP_ARCH_ARCHFILE_H
#define LTP_ARCH_ARCHFILE_H

#include "arch/ArchParams.h"
#include "support/ErrorOr.h"

#include <string>

namespace ltp {

/// Parses an architecture description from \p Text. Unknown keys are an
/// error (they are most likely typos of known ones); omitted keys keep
/// the i7-6700 defaults.
ErrorOr<ArchParams> parseArchParams(const std::string &Text);

/// Loads a description from \p Path.
ErrorOr<ArchParams> loadArchParams(const std::string &Path);

/// Renders \p Arch in the file format (round-trips through parse).
std::string archParamsToText(const ArchParams &Arch);

} // namespace ltp

#endif // LTP_ARCH_ARCHFILE_H
