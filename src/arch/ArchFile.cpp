//===- ArchFile.cpp - platform description files --------------------------===//

#include "arch/ArchFile.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace ltp;

namespace {

std::string trim(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin != End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End != Begin &&
         std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

/// Parses "64", "32K", "8M" into bytes; negative on error.
int64_t parseSize(const std::string &Text) {
  char *End = nullptr;
  long long Value = std::strtoll(Text.c_str(), &End, 10);
  if (End == Text.c_str() || Value < 0)
    return -1;
  std::string Suffix = trim(End);
  if (Suffix.empty())
    return Value;
  if (Suffix == "K" || Suffix == "k")
    return Value * 1024;
  if (Suffix == "M" || Suffix == "m")
    return Value * 1024 * 1024;
  return -1;
}

/// Parses a boolean spelled true/false/1/0; -1 on error.
int parseBool(const std::string &Text) {
  if (Text == "true" || Text == "1")
    return 1;
  if (Text == "false" || Text == "0")
    return 0;
  return -1;
}

} // namespace

ErrorOr<ArchParams> ltp::parseArchParams(const std::string &Text) {
  ArchParams Arch = intelI7_6700();
  Arch.Name = "custom";

  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t Comment = Line.find('#');
    if (Comment != std::string::npos)
      Line = Line.substr(0, Comment);
    Line = trim(Line);
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return ErrorOr<ArchParams>::makeError(
          strFormat("line %d: expected 'key = value'", LineNo));
    std::string Key = trim(Line.substr(0, Eq));
    std::string Value = trim(Line.substr(Eq + 1));
    auto Fail = [&](const char *Why) {
      return ErrorOr<ArchParams>::makeError(
          strFormat("line %d: %s for key '%s': '%s'", LineNo, Why,
                    Key.c_str(), Value.c_str()));
    };

    if (Key == "name") {
      Arch.Name = Value;
    } else if (Key == "l1.size" || Key == "l2.size" || Key == "l3.size") {
      int64_t Bytes = parseSize(Value);
      if (Bytes < 0)
        return Fail("bad size");
      (Key[1] == '1' ? Arch.L1 : Key[1] == '2' ? Arch.L2 : Arch.L3)
          .SizeBytes = Bytes;
    } else if (Key == "l1.ways" || Key == "l2.ways" || Key == "l3.ways") {
      int64_t Ways = parseSize(Value);
      if (Ways <= 0)
        return Fail("bad way count");
      (Key[1] == '1' ? Arch.L1 : Key[1] == '2' ? Arch.L2 : Arch.L3).Ways =
          Ways;
    } else if (Key == "l1.line" || Key == "l2.line" || Key == "l3.line") {
      int64_t LineBytes = parseSize(Value);
      if (LineBytes <= 0)
        return Fail("bad line size");
      (Key[1] == '1' ? Arch.L1 : Key[1] == '2' ? Arch.L2 : Arch.L3)
          .LineBytes = LineBytes;
    } else if (Key == "cores") {
      Arch.NCores = static_cast<int>(parseSize(Value));
      if (Arch.NCores <= 0)
        return Fail("bad core count");
    } else if (Key == "threads_per_core") {
      Arch.NThreadsPerCore = static_cast<int>(parseSize(Value));
      if (Arch.NThreadsPerCore <= 0)
        return Fail("bad thread count");
    } else if (Key == "vector_width") {
      Arch.VectorWidth = static_cast<int>(parseSize(Value));
      if (Arch.VectorWidth <= 0)
        return Fail("bad vector width");
    } else if (Key == "nt_stores") {
      int B = parseBool(Value);
      if (B < 0)
        return Fail("bad boolean");
      Arch.HasNonTemporalStores = B != 0;
    } else if (Key == "shared_l2") {
      int B = parseBool(Value);
      if (B < 0)
        return Fail("bad boolean");
      Arch.SharedL2 = B != 0;
    } else if (Key == "l1_next_line_prefetcher") {
      int B = parseBool(Value);
      if (B < 0)
        return Fail("bad boolean");
      Arch.L1NextLinePrefetcher = B != 0;
    } else if (Key == "l2_prefetch_degree") {
      Arch.L2PrefetchDegree = static_cast<int>(parseSize(Value));
      if (Arch.L2PrefetchDegree < 0)
        return Fail("bad prefetch degree");
    } else if (Key == "l2_max_prefetch_distance") {
      Arch.L2MaxPrefetchDistance = static_cast<int>(parseSize(Value));
      if (Arch.L2MaxPrefetchDistance < 0)
        return Fail("bad prefetch distance");
    } else if (Key == "l2_streamer_trains") {
      Arch.L2StreamerTrains = static_cast<int>(parseSize(Value));
      if (Arch.L2StreamerTrains <= 0)
        return Fail("bad streamer train count");
    } else if (Key == "vector_registers") {
      Arch.VectorRegisters = static_cast<int>(parseSize(Value));
      if (Arch.VectorRegisters <= 0)
        return Fail("bad vector register count");
    } else if (Key == "a2") {
      Arch.A2 = std::strtod(Value.c_str(), nullptr);
    } else if (Key == "a3") {
      Arch.A3 = std::strtod(Value.c_str(), nullptr);
    } else {
      return ErrorOr<ArchParams>::makeError(
          strFormat("line %d: unknown key '%s'", LineNo, Key.c_str()));
    }
  }
  if (Arch.L1.SizeBytes <= 0 || Arch.L2.SizeBytes <= 0)
    return ErrorOr<ArchParams>::makeError(
        "platform requires non-empty l1.size and l2.size");
  return Arch;
}

ErrorOr<ArchParams> ltp::loadArchParams(const std::string &Path) {
  std::ifstream In(Path);
  if (!In.good())
    return ErrorOr<ArchParams>::makeError("cannot open '" + Path + "'");
  std::ostringstream Text;
  Text << In.rdbuf();
  return parseArchParams(Text.str());
}

std::string ltp::archParamsToText(const ArchParams &Arch) {
  std::string Out;
  Out += strFormat("name = %s\n", Arch.Name.c_str());
  Out += strFormat("l1.size = %lldK\n",
                   static_cast<long long>(Arch.L1.SizeBytes / 1024));
  Out += strFormat("l1.ways = %lld\n",
                   static_cast<long long>(Arch.L1.Ways));
  Out += strFormat("l1.line = %lld\n",
                   static_cast<long long>(Arch.L1.LineBytes));
  Out += strFormat("l2.size = %lldK\n",
                   static_cast<long long>(Arch.L2.SizeBytes / 1024));
  Out += strFormat("l2.ways = %lld\n",
                   static_cast<long long>(Arch.L2.Ways));
  Out += strFormat("l2.line = %lld\n",
                   static_cast<long long>(Arch.L2.LineBytes));
  Out += strFormat("l3.size = %lldK\n",
                   static_cast<long long>(Arch.L3.SizeBytes / 1024));
  Out += strFormat("l3.ways = %lld\n",
                   static_cast<long long>(Arch.L3.Ways));
  Out += strFormat("cores = %d\n", Arch.NCores);
  Out += strFormat("threads_per_core = %d\n", Arch.NThreadsPerCore);
  Out += strFormat("vector_width = %d\n", Arch.VectorWidth);
  Out += strFormat("nt_stores = %s\n",
                   Arch.HasNonTemporalStores ? "true" : "false");
  Out += strFormat("shared_l2 = %s\n", Arch.SharedL2 ? "true" : "false");
  Out += strFormat("l1_next_line_prefetcher = %s\n",
                   Arch.L1NextLinePrefetcher ? "true" : "false");
  Out += strFormat("l2_prefetch_degree = %d\n", Arch.L2PrefetchDegree);
  Out += strFormat("l2_max_prefetch_distance = %d\n",
                   Arch.L2MaxPrefetchDistance);
  Out += strFormat("l2_streamer_trains = %d\n", Arch.L2StreamerTrains);
  Out += strFormat("vector_registers = %d\n", Arch.VectorRegisters);
  Out += strFormat("a2 = %g\n", Arch.A2);
  Out += strFormat("a3 = %g\n", Arch.A3);
  return Out;
}
