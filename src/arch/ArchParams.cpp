//===- ArchParams.cpp - architecture parameters (Tables 1 and 3) ---------===//

#include "arch/ArchParams.h"

#include "support/Format.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

using namespace ltp;

ArchParams ltp::intelI7_6700() {
  // Table 3, middle column: Skylake desktop, 4C/8T, 8-way 32K L1D,
  // 8-way 256K L2, (8M shared L3).
  ArchParams Arch;
  Arch.Name = "Intel i7-6700";
  Arch.L1 = CacheParams{32 * 1024, 64, 8};
  Arch.L2 = CacheParams{256 * 1024, 64, 8};
  Arch.L3 = CacheParams{8 * 1024 * 1024, 64, 16};
  Arch.NCores = 4;
  Arch.NThreadsPerCore = 2;
  Arch.VectorWidth = 8;
  Arch.HasNonTemporalStores = true;
  Arch.SharedL2 = false;
  Arch.L2PrefetchDegree = 2;
  Arch.L2MaxPrefetchDistance = 20;
  Arch.L2StreamerTrains = 32;
  Arch.VectorRegisters = 16;
  Arch.A2 = 1.0;
  Arch.A3 = 4.0;
  return Arch;
}

ArchParams ltp::intelI7_5930K() {
  // Table 3, left column: Haswell-E, 6C/12T, 8-way 32K L1D, 8-way 256K L2,
  // (15M shared L3).
  ArchParams Arch = intelI7_6700();
  Arch.Name = "Intel i7-5930K";
  Arch.L3 = CacheParams{15 * 1024 * 1024, 64, 20};
  Arch.NCores = 6;
  return Arch;
}

ArchParams ltp::armCortexA15() {
  // Table 3, right column: 2-way 32K L1D, 16-way 512K shared L2, no L3,
  // one thread per core, NEON (4-wide float), no vector NT stores.
  ArchParams Arch;
  Arch.Name = "ARM Cortex-A15";
  Arch.L1 = CacheParams{32 * 1024, 64, 2};
  Arch.L2 = CacheParams{512 * 1024, 64, 16};
  Arch.L3 = CacheParams{0, 64, 1};
  Arch.NCores = 4;
  Arch.NThreadsPerCore = 1;
  Arch.VectorWidth = 4;
  Arch.HasNonTemporalStores = false;
  Arch.SharedL2 = true;
  // The A15 L2 prefetcher tracks fewer streams at a shorter distance than
  // the Intel streamer.
  Arch.L2PrefetchDegree = 1;
  Arch.L2MaxPrefetchDistance = 8;
  Arch.L2StreamerTrains = 8;
  Arch.VectorRegisters = 16;
  Arch.A2 = 1.0;
  // No L3: the a3 weight prices misses that go straight to DRAM.
  Arch.A3 = 8.0;
  return Arch;
}

namespace {

/// Reads a sysfs cache attribute; returns an empty string when absent.
std::string readSysfs(const std::string &Path) {
  std::ifstream In(Path);
  if (!In.good())
    return "";
  std::string Line;
  std::getline(In, Line);
  return Line;
}

/// Parses "32K" / "2048K" / "8M" size spellings.
int64_t parseSize(const std::string &Text) {
  if (Text.empty())
    return 0;
  std::istringstream In(Text);
  int64_t Value = 0;
  In >> Value;
  char Suffix = 0;
  In >> Suffix;
  if (Suffix == 'K' || Suffix == 'k')
    Value *= 1024;
  else if (Suffix == 'M' || Suffix == 'm')
    Value *= 1024 * 1024;
  return Value;
}

} // namespace

ArchParams ltp::detectHost() {
  ArchParams Arch = intelI7_6700();
  Arch.Name = "host";
  unsigned HW = std::thread::hardware_concurrency();
  if (HW > 0) {
    Arch.NCores = static_cast<int>(HW);
    Arch.NThreadsPerCore = 1;
  }

  const std::string Base = "/sys/devices/system/cpu/cpu0/cache/";
  bool SawL3 = false;
  for (int Index = 0; Index < 8; ++Index) {
    std::string Dir = Base + "index" + std::to_string(Index) + "/";
    std::string LevelText = readSysfs(Dir + "level");
    if (LevelText.empty())
      break;
    std::string TypeText = readSysfs(Dir + "type");
    if (TypeText == "Instruction")
      continue;
    CacheParams C;
    C.SizeBytes = parseSize(readSysfs(Dir + "size"));
    std::string WaysText = readSysfs(Dir + "ways_of_associativity");
    std::string LineText = readSysfs(Dir + "coherency_line_size");
    if (!WaysText.empty())
      C.Ways = std::stoll(WaysText);
    if (!LineText.empty())
      C.LineBytes = std::stoll(LineText);
    if (C.SizeBytes <= 0 || C.Ways <= 0 || C.LineBytes <= 0)
      continue;
    int Level = std::stoi(LevelText);
    if (Level == 1)
      Arch.L1 = C;
    else if (Level == 2)
      Arch.L2 = C;
    else if (Level == 3) {
      Arch.L3 = C;
      SawL3 = true;
    }
  }
  if (!SawL3)
    Arch.L3 = CacheParams{0, Arch.L2.LineBytes, 1};
  return Arch;
}

std::string ltp::describe(const ArchParams &Arch) {
  std::string L3Text =
      Arch.L3.SizeBytes > 0
          ? strFormat("L3 %lldK/%lld-way",
                      static_cast<long long>(Arch.L3.SizeBytes / 1024),
                      static_cast<long long>(Arch.L3.Ways))
          : std::string("no L3");
  return strFormat(
      "%s: L1 %lldK/%lld-way, L2 %lldK/%lld-way%s, %s, %dC/%dT, vec %d, "
      "NT stores %s, L2 pref degree %d dist %d",
      Arch.Name.c_str(), static_cast<long long>(Arch.L1.SizeBytes / 1024),
      static_cast<long long>(Arch.L1.Ways),
      static_cast<long long>(Arch.L2.SizeBytes / 1024),
      static_cast<long long>(Arch.L2.Ways),
      Arch.SharedL2 ? " (shared)" : "", L3Text.c_str(), Arch.NCores,
      Arch.NThreadsPerCore, Arch.VectorWidth,
      Arch.HasNonTemporalStores ? "yes" : "no", Arch.L2PrefetchDegree,
      Arch.L2MaxPrefetchDistance);
}
