//===- PipelineRunner.h - lower/execute/simulate benchmark pipelines -*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue that takes a scheduled BenchmarkInstance through each execution
/// engine: lowering, the interpreter (correctness), the JIT (wall-clock
/// measurements) and the cache simulator (platform-configured miss
/// profiles). Stages run in order with compute_root semantics.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_BENCHMARKS_PIPELINERUNNER_H
#define LTP_BENCHMARKS_PIPELINERUNNER_H

#include "benchmarks/Benchmarks.h"
#include "cachesim/TraceRunner.h"
#include "jit/JIT.h"

#include <vector>

namespace ltp {

/// Lowers every stage of the pipeline with its current schedule.
std::vector<ir::StmtPtr> lowerPipeline(const BenchmarkInstance &Instance);

/// Runs the pipeline through the interpreter (the bytecode VM by
/// default; pass `InterpEngine::Reference` for the tree-walking oracle).
void runInterpreted(const BenchmarkInstance &Instance,
                    bool RunParallel = false,
                    InterpEngine Engine = InterpEngine::Auto);

/// A pipeline compiled to native kernels (one per stage).
struct CompiledPipeline {
  std::vector<CompiledKernel> Kernels;

  void run(const BenchmarkInstance &Instance) const {
    for (const CompiledKernel &Kernel : Kernels)
      Kernel.run(Instance.Buffers);
  }
};

/// Compiles every stage with the host C compiler.
ErrorOr<CompiledPipeline>
compilePipeline(const BenchmarkInstance &Instance, JITCompiler &Compiler,
                const CodeGenOptions &Options = CodeGenOptions());

/// One scheduled pipeline variant awaiting compilation: the stages as
/// lowered under the schedule that was applied when the job was made,
/// plus the buffers they bind against. Capture the job before mutating
/// the instance's schedules again (autotuning candidates).
struct PipelineCompileJob {
  std::vector<ir::StmtPtr> Stages;
  const std::map<std::string, BufferRef> *Buffers = nullptr;
  CodeGenOptions Options;
};

/// Lowers and bounds-checks \p Instance with its current schedules into a
/// compile job for compilePipelines.
PipelineCompileJob
makeCompileJob(const BenchmarkInstance &Instance,
               const CodeGenOptions &Options = CodeGenOptions());

/// Compiles a batch of pipeline variants in one JITCompiler::compileMany
/// call, fanning the cold stage compilations across the thread pool.
/// Results are in job order; a pipeline whose stages all hit the memo or
/// disk cache costs no compiler invocation at all.
std::vector<ErrorOr<CompiledPipeline>>
compilePipelines(const std::vector<PipelineCompileJob> &Jobs,
                 JITCompiler &Compiler);

/// Runs the pipeline through the cache simulator configured from \p Arch
/// and returns the merged miss profile. Uses the compiled access-program
/// fast path when the lowered stages admit one, falling back to the
/// interpreter transparently (identical statistics either way).
SimResult simulatePipeline(const BenchmarkInstance &Instance,
                           const ArchParams &Arch,
                           SimEngine Engine = SimEngine::Auto);

/// One (scheduled instance, platform) simulation of a sweep.
struct PipelineSimJob {
  const BenchmarkInstance *Instance = nullptr;
  ArchParams Arch;
};

/// Simulates every job across the global thread pool (lowering and
/// bounds-checking run serially up front). Results are in job order.
/// Instances must be distinct objects: a simulation may write the
/// instance's buffers when it takes the interpreter path.
std::vector<SimResult>
simulatePipelines(const std::vector<PipelineSimJob> &Jobs,
                  SimEngine Engine = SimEngine::Auto);

} // namespace ltp

#endif // LTP_BENCHMARKS_PIPELINERUNNER_H
