//===- PipelineRunner.cpp - lower/execute/simulate benchmark pipelines ---===//

#include "benchmarks/PipelineRunner.h"

#include "interp/Interpreter.h"
#include "lang/Bounds.h"
#include "lang/Lower.h"

#include <cassert>
#include <cstdio>

using namespace ltp;

namespace {

/// Static bounds check of every stage against the bound buffers; schedule
/// bugs surface here with a diagnostic instead of as a wild pointer in
/// JIT-compiled code.
void checkBounds(const std::vector<ir::StmtPtr> &Lowered,
                 const std::map<std::string, BufferRef> &Buffers) {
  for (const ir::StmtPtr &S : Lowered) {
    std::string Diag = validateAccesses(S, Buffers);
    if (!Diag.empty()) {
      std::fprintf(stderr, "fatal: schedule accesses out of bounds: %s\n",
                   Diag.c_str());
      assert(false && "schedule accesses out of bounds");
    }
  }
}

} // namespace

std::vector<ir::StmtPtr>
ltp::lowerPipeline(const BenchmarkInstance &Instance) {
  assert(Instance.Stages.size() == Instance.StageExtents.size() &&
         "stage/extent count mismatch");
  std::vector<ir::StmtPtr> Lowered;
  Lowered.reserve(Instance.Stages.size());
  for (size_t S = 0; S != Instance.Stages.size(); ++S)
    Lowered.push_back(
        lowerFunc(Instance.Stages[S], Instance.StageExtents[S]));
  return Lowered;
}

void ltp::runInterpreted(const BenchmarkInstance &Instance,
                         bool RunParallel, InterpEngine Engine) {
  InterpOptions Options;
  Options.RunParallel = RunParallel;
  Options.Engine = Engine;
  std::vector<ir::StmtPtr> Lowered = lowerPipeline(Instance);
  checkBounds(Lowered, Instance.Buffers);
  for (const ir::StmtPtr &S : Lowered)
    interpret(S, Instance.Buffers, Options);
}

ErrorOr<CompiledPipeline>
ltp::compilePipeline(const BenchmarkInstance &Instance,
                     JITCompiler &Compiler, const CodeGenOptions &Options) {
  // One signature shared by all stages: every named buffer, sorted by
  // name (std::map order), so stage kernels can be called uniformly.
  std::vector<BufferBinding> Signature;
  for (const auto &[Name, Ref] : Instance.Buffers)
    Signature.push_back(BufferBinding::fromRef(Name, Ref));

  std::vector<ir::StmtPtr> Lowered = lowerPipeline(Instance);
  checkBounds(Lowered, Instance.Buffers);
  CompiledPipeline Pipeline;
  for (const ir::StmtPtr &S : Lowered) {
    auto Kernel = Compiler.compile(S, Signature, Options);
    if (!Kernel)
      return ErrorOr<CompiledPipeline>::makeError(Kernel.getError());
    Pipeline.Kernels.push_back(std::move(*Kernel));
  }
  return Pipeline;
}

PipelineCompileJob
ltp::makeCompileJob(const BenchmarkInstance &Instance,
                    const CodeGenOptions &Options) {
  PipelineCompileJob Job;
  Job.Stages = lowerPipeline(Instance);
  checkBounds(Job.Stages, Instance.Buffers);
  Job.Buffers = &Instance.Buffers;
  Job.Options = Options;
  return Job;
}

std::vector<ErrorOr<CompiledPipeline>>
ltp::compilePipelines(const std::vector<PipelineCompileJob> &Jobs,
                      JITCompiler &Compiler) {
  std::vector<CompileJob> Flat;
  for (const PipelineCompileJob &Job : Jobs) {
    assert(Job.Buffers && "compile job without buffers");
    std::vector<BufferBinding> Signature;
    for (const auto &[Name, Ref] : *Job.Buffers)
      Signature.push_back(BufferBinding::fromRef(Name, Ref));
    for (const ir::StmtPtr &S : Job.Stages)
      Flat.push_back(CompileJob{S, Signature, Job.Options});
  }

  std::vector<ErrorOr<CompiledKernel>> Kernels =
      Compiler.compileMany(Flat);

  std::vector<ErrorOr<CompiledPipeline>> Out;
  size_t Next = 0;
  for (const PipelineCompileJob &Job : Jobs) {
    CompiledPipeline Pipeline;
    std::string Error;
    for (size_t S = 0; S != Job.Stages.size(); ++S, ++Next) {
      if (!Kernels[Next]) {
        if (Error.empty())
          Error = Kernels[Next].getError();
        continue;
      }
      Pipeline.Kernels.push_back(std::move(*Kernels[Next]));
    }
    if (!Error.empty())
      Out.push_back(ErrorOr<CompiledPipeline>::makeError(Error));
    else
      Out.push_back(std::move(Pipeline));
  }
  return Out;
}

SimResult ltp::simulatePipeline(const BenchmarkInstance &Instance,
                                const ArchParams &Arch, SimEngine Engine) {
  return simulate(lowerPipeline(Instance), Instance.Buffers, Arch,
                  LatencyModel(), Engine);
}

std::vector<SimResult>
ltp::simulatePipelines(const std::vector<PipelineSimJob> &Jobs,
                       SimEngine Engine) {
  // Lowering mutates shared Func schedule state and asserts on bad
  // bounds; keep it serial and feed the thread pool pure simulations.
  std::vector<SimJob> SimJobs(Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    const PipelineSimJob &Job = Jobs[I];
    assert(Job.Instance && "job without an instance");
    SimJobs[I].Stmts = lowerPipeline(*Job.Instance);
    checkBounds(SimJobs[I].Stmts, Job.Instance->Buffers);
    SimJobs[I].Buffers = &Job.Instance->Buffers;
    SimJobs[I].Arch = Job.Arch;
  }
  return simulateMany(SimJobs, Engine);
}
