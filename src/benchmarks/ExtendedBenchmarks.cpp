//===- ExtendedBenchmarks.cpp - kernels beyond the paper's suite ----------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// PolyBench kernels not in the paper's Table 4 plus a Jacobi stencil,
// used to exercise parts of the flow the original 12 do not reach:
//
//   atax      y = A^T (A x): two 1-D reductions, one over a transposed
//             view — temporal class with no parallelizable pure loop.
//   bicg      s = r A, q = A p: the same two orientations side by side.
//   mvt       x1 += A^T y1, x2 += A y2: independent 1-D stages.
//   gemver    A-hat = A + u1 v1^T + u2 v2^T, then two matrix-vector
//             products — a 4-stage pipeline mixing NoTransform and
//             temporal stages.
//   jacobi2d  5-point stencil: same index variables with constant
//             offsets, the pattern Figure 2 routes to NoTransform per
//             Kamil et al. [9].
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <cassert>

using namespace ltp;

namespace {

template <typename T>
Buffer<T> *addBuffer(BenchmarkInstance &Instance, const std::string &Name,
                     std::vector<int64_t> Extents, uint32_t Seed) {
  auto Owned = std::make_shared<Buffer<T>>(std::move(Extents));
  if (Seed != 0)
    Owned->fillRandom(Seed);
  Instance.Buffers[Name] = Owned->ref();
  Instance.Storage.push_back(Owned);
  return Owned.get();
}

template <typename T>
Buffer<T> *addExpected(BenchmarkInstance &Instance,
                       std::vector<int64_t> Extents) {
  auto Owned = std::make_shared<Buffer<T>>(std::move(Extents));
  Instance.ExpectedRef = Owned->ref();
  Instance.Storage.push_back(Owned);
  return Owned.get();
}

BenchmarkInstance makeAtax(int64_t N) {
  BenchmarkInstance I;
  I.Name = "atax";
  // tmp = A x;  y = A^T tmp.  A(j, i) stores row i contiguously in j.
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 31);
  Buffer<float> *X = addBuffer<float>(I, "x", {N}, 32);
  addBuffer<float>(I, "tmp", {N}, 0);
  addBuffer<float>(I, "y", {N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N});

  Var Iv("i"), Jv("j");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer XIn("x", ir::Type::float32(), 1);
  InputBuffer TmpIn("tmp", ir::Type::float32(), 1);

  RDom J(0, static_cast<int>(N), "jr");
  Func Tmp("tmp");
  Tmp(Iv) = 0.0f;
  Tmp(Iv) += AIn(J, Iv) * XIn(J);

  RDom Ir(0, static_cast<int>(N), "ir");
  Func Y("y");
  Y(Jv) = 0.0f;
  Y(Jv) += AIn(Jv, Ir) * TmpIn(Ir);

  I.Stages = {Tmp, Y};
  I.StageExtents = {{N}, {N}};
  I.OutputName = "y";
  I.Work = 4.0 * static_cast<double>(N) * N;
  I.FillExpected = [A, X, E, N] {
    const float *PA = A->data(), *PX = X->data();
    float *PE = E->data();
    std::vector<float> Tmp(static_cast<size_t>(N), 0.0f);
    for (int64_t R = 0; R != N; ++R) {
      float Acc = 0.0f;
      for (int64_t C = 0; C != N; ++C)
        Acc += PA[R * N + C] * PX[C];
      Tmp[static_cast<size_t>(R)] = Acc;
    }
    for (int64_t C = 0; C != N; ++C) {
      float Acc = 0.0f;
      for (int64_t R = 0; R != N; ++R)
        Acc += PA[R * N + C] * Tmp[static_cast<size_t>(R)];
      PE[C] = Acc;
    }
  };
  return I;
}

BenchmarkInstance makeBicg(int64_t N) {
  BenchmarkInstance I;
  I.Name = "bicg";
  // s = r A (column sums), q = A p (row sums); output is q, s is a second
  // realized stage whose correctness the q oracle implies only partially,
  // so the oracle checks q and the s stage feeds nothing.
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 41);
  Buffer<float> *R = addBuffer<float>(I, "r", {N}, 42);
  Buffer<float> *P = addBuffer<float>(I, "p", {N}, 43);
  addBuffer<float>(I, "s", {N}, 0);
  addBuffer<float>(I, "q", {N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N});

  Var Iv("i"), Jv("j");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer RIn("r", ir::Type::float32(), 1);
  InputBuffer PIn("p", ir::Type::float32(), 1);

  RDom Ir(0, static_cast<int>(N), "ir");
  Func S("s");
  S(Jv) = 0.0f;
  S(Jv) += RIn(Ir) * AIn(Jv, Ir);

  RDom Jr(0, static_cast<int>(N), "jr");
  Func Q("q");
  Q(Iv) = 0.0f;
  Q(Iv) += AIn(Jr, Iv) * PIn(Jr);

  I.Stages = {S, Q};
  I.StageExtents = {{N}, {N}};
  I.OutputName = "q";
  I.Work = 4.0 * static_cast<double>(N) * N;
  I.FillExpected = [A, P, E, N] {
    const float *PA = A->data(), *PP = P->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row) {
      float Acc = 0.0f;
      for (int64_t C = 0; C != N; ++C)
        Acc += PA[Row * N + C] * PP[C];
      PE[Row] = Acc;
    }
  };
  (void)R;
  return I;
}

BenchmarkInstance makeMvt(int64_t N) {
  BenchmarkInstance I;
  I.Name = "mvt";
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 51);
  Buffer<float> *Y1 = addBuffer<float>(I, "y1", {N}, 52);
  Buffer<float> *X1In = addBuffer<float>(I, "x1in", {N}, 54);
  addBuffer<float>(I, "x1", {N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N});

  // x1 = x1in + A y1.
  Var Iv("i");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer Y1In("y1", ir::Type::float32(), 1);
  InputBuffer X1("x1in", ir::Type::float32(), 1);
  RDom J(0, static_cast<int>(N), "jr");
  Func Out("x1");
  Out(Iv) = X1(Iv);
  Out(Iv) += AIn(J, Iv) * Y1In(J);

  I.Stages = {Out};
  I.StageExtents = {{N}};
  I.OutputName = "x1";
  I.Work = 2.0 * static_cast<double>(N) * N;
  I.FillExpected = [A, Y1, X1In, E, N] {
    const float *PA = A->data(), *PY = Y1->data(), *PX = X1In->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row) {
      float Acc = PX[Row];
      for (int64_t C = 0; C != N; ++C)
        Acc += PA[Row * N + C] * PY[C];
      PE[Row] = Acc;
    }
  };
  return I;
}

BenchmarkInstance makeGemver(int64_t N) {
  BenchmarkInstance I;
  I.Name = "gemver";
  const float Alpha = 1.2f, Beta = 1.1f;
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 61);
  Buffer<float> *U1 = addBuffer<float>(I, "u1", {N}, 62);
  Buffer<float> *V1 = addBuffer<float>(I, "v1", {N}, 63);
  Buffer<float> *U2 = addBuffer<float>(I, "u2", {N}, 64);
  Buffer<float> *V2 = addBuffer<float>(I, "v2", {N}, 65);
  Buffer<float> *Y = addBuffer<float>(I, "y", {N}, 66);
  Buffer<float> *Z = addBuffer<float>(I, "z", {N}, 67);
  addBuffer<float>(I, "Ah", {N, N}, 0);
  addBuffer<float>(I, "x", {N}, 0);
  addBuffer<float>(I, "w", {N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N});

  Var Iv("i"), Jv("j");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer U1In("u1", ir::Type::float32(), 1);
  InputBuffer V1In("v1", ir::Type::float32(), 1);
  InputBuffer U2In("u2", ir::Type::float32(), 1);
  InputBuffer V2In("v2", ir::Type::float32(), 1);
  InputBuffer YIn("y", ir::Type::float32(), 1);
  InputBuffer ZIn("z", ir::Type::float32(), 1);
  InputBuffer AhIn("Ah", ir::Type::float32(), 2);
  InputBuffer XIn("x", ir::Type::float32(), 1);

  // Stage 1: rank-2 update; same index variables on both sides, no
  // transposition -> NoTransform (+NTI candidate).
  Func Ah("Ah");
  Ah(Jv, Iv) = AIn(Jv, Iv) + U1In(Iv) * V1In(Jv) + U2In(Iv) * V2In(Jv);

  // Stage 2: x = beta * Ah^T y + z.
  RDom Jr(0, static_cast<int>(N), "jr2");
  Func X("x");
  X(Iv) = ZIn(Iv);
  X(Iv) += Beta * AhIn(Iv, Jr) * YIn(Jr);

  // Stage 3: w = alpha * Ah x.
  RDom Jr3(0, static_cast<int>(N), "jr3");
  Func W("w");
  W(Iv) = 0.0f;
  W(Iv) += Alpha * AhIn(Jr3, Iv) * XIn(Jr3);

  I.Stages = {Ah, X, W};
  I.StageExtents = {{N, N}, {N}, {N}};
  I.OutputName = "w";
  I.Work = 2.0 * static_cast<double>(N) * N * 3.0;
  I.FillExpected = [=] {
    const float *PA = A->data();
    std::vector<float> AH(static_cast<size_t>(N * N));
    for (int64_t R = 0; R != N; ++R)
      for (int64_t C = 0; C != N; ++C)
        AH[static_cast<size_t>(R * N + C)] =
            PA[R * N + C] + U1->data()[R] * V1->data()[C] +
            U2->data()[R] * V2->data()[C];
    std::vector<float> XV(static_cast<size_t>(N));
    for (int64_t C = 0; C != N; ++C) {
      float Acc = Z->data()[C];
      for (int64_t R = 0; R != N; ++R)
        Acc += Beta * AH[static_cast<size_t>(R * N + C)] * Y->data()[R];
      XV[static_cast<size_t>(C)] = Acc;
    }
    float *PE = E->data();
    for (int64_t R = 0; R != N; ++R) {
      float Acc = 0.0f;
      for (int64_t C = 0; C != N; ++C)
        Acc += Alpha * AH[static_cast<size_t>(R * N + C)] *
               XV[static_cast<size_t>(C)];
      PE[R] = Acc;
    }
  };
  return I;
}

BenchmarkInstance makeJacobi2d(int64_t N) {
  BenchmarkInstance I;
  I.Name = "jacobi2d";
  // One out-of-place 5-point sweep over a padded grid.
  Buffer<float> *In = addBuffer<float>(I, "In", {N + 2, N + 2}, 71);
  addBuffer<float>(I, "Out", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  Var X("x"), Y("y");
  InputBuffer InB("In", ir::Type::float32(), 2);
  Func Out("Out");
  Out(X, Y) = 0.2f * (InB(Expr(X) + 1, Expr(Y) + 1) +
                      InB(Expr(X), Expr(Y) + 1) +
                      InB(Expr(X) + 2, Expr(Y) + 1) +
                      InB(Expr(X) + 1, Expr(Y)) +
                      InB(Expr(X) + 1, Expr(Y) + 2));

  I.Stages = {Out};
  I.StageExtents = {{N, N}};
  I.OutputName = "Out";
  I.Work = 5.0 * static_cast<double>(N) * N;
  I.FillExpected = [In, E, N] {
    const float *PI = In->data();
    float *PE = E->data();
    int64_t W = N + 2;
    for (int64_t Y2 = 0; Y2 != N; ++Y2)
      for (int64_t X2 = 0; X2 != N; ++X2)
        PE[Y2 * N + X2] =
            0.2f * (PI[(Y2 + 1) * W + (X2 + 1)] + PI[(Y2 + 1) * W + X2] +
                    PI[(Y2 + 1) * W + (X2 + 2)] + PI[Y2 * W + (X2 + 1)] +
                    PI[(Y2 + 2) * W + (X2 + 1)]);
  };
  return I;
}

} // namespace

const std::vector<BenchmarkDef> &ltp::extendedBenchmarks() {
  static const std::vector<BenchmarkDef> Defs = {
      {"atax", "y = A^T (A x)", 1024, 4096, makeAtax},
      {"bicg", "s = r A; q = A p", 1024, 4096, makeBicg},
      {"mvt", "x1 = x1 + A y1", 1024, 4096, makeMvt},
      {"gemver", "rank-2 update + two matvecs", 1024, 4096, makeGemver},
      {"jacobi2d", "5-point Jacobi sweep (stencil)", 2048, 4096,
       makeJacobi2d},
  };
  return Defs;
}
