//===- Benchmarks.cpp - the 12 paper benchmarks (Table 4) ----------------===//

#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ltp;

namespace {

/// Allocates a named buffer inside the instance and returns the typed
/// handle (kept alive by Instance.Storage).
template <typename T>
Buffer<T> *addBuffer(BenchmarkInstance &Instance, const std::string &Name,
                     std::vector<int64_t> Extents, uint32_t Seed) {
  auto Owned = std::make_shared<Buffer<T>>(std::move(Extents));
  if (Seed != 0)
    Owned->fillRandom(Seed);
  Instance.Buffers[Name] = Owned->ref();
  Instance.Storage.push_back(Owned);
  return Owned.get();
}

/// Allocates the expected-output buffer (not visible to the pipeline).
template <typename T>
Buffer<T> *addExpected(BenchmarkInstance &Instance,
                       std::vector<int64_t> Extents) {
  auto Owned = std::make_shared<Buffer<T>>(std::move(Extents));
  Instance.ExpectedRef = Owned->ref();
  Instance.Storage.push_back(Owned);
  return Owned.get();
}

//===----------------------------------------------------------------------===//
// Temporal-reuse kernels
//===----------------------------------------------------------------------===//

BenchmarkInstance makeMatmul(int64_t N) {
  BenchmarkInstance I;
  I.Name = "matmul";
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 1);
  Buffer<float> *B = addBuffer<float>(I, "B", {N, N}, 2);
  addBuffer<float>(I, "C", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  Var J("j"), Iv("i");
  RDom K(0, static_cast<int>(N), "k");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer BIn("B", ir::Type::float32(), 2);
  Func C("C");
  C(J, Iv) = 0.0f;
  C(J, Iv) += AIn(K, Iv) * BIn(J, K);

  I.Stages = {C};
  I.StageExtents = {{N, N}};
  I.OutputName = "C";
  I.Work = 2.0 * static_cast<double>(N) * N * N;
  I.FillExpected = [A, B, E, N] {
    const float *PA = A->data(), *PB = B->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row)
      for (int64_t Col = 0; Col != N; ++Col) {
        float Acc = 0.0f;
        for (int64_t K2 = 0; K2 != N; ++K2)
          Acc += PA[Row * N + K2] * PB[K2 * N + Col];
        PE[Row * N + Col] = Acc;
      }
  };
  return I;
}

BenchmarkInstance makeGemm(int64_t N) {
  BenchmarkInstance I;
  I.Name = "gemm";
  const float Alpha = 1.5f, Beta = 1.2f;
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 3);
  Buffer<float> *B = addBuffer<float>(I, "B", {N, N}, 4);
  Buffer<float> *Cin = addBuffer<float>(I, "Cin", {N, N}, 5);
  addBuffer<float>(I, "C", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  Var J("j"), Iv("i");
  RDom K(0, static_cast<int>(N), "k");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer BIn("B", ir::Type::float32(), 2);
  InputBuffer CIn("Cin", ir::Type::float32(), 2);
  Func C("C");
  C(J, Iv) = Beta * CIn(J, Iv);
  C(J, Iv) += Alpha * AIn(K, Iv) * BIn(J, K);

  I.Stages = {C};
  I.StageExtents = {{N, N}};
  I.OutputName = "C";
  I.Work = 2.0 * static_cast<double>(N) * N * N;
  I.FillExpected = [A, B, Cin, E, N, Alpha, Beta] {
    const float *PA = A->data(), *PB = B->data(), *PC = Cin->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row)
      for (int64_t Col = 0; Col != N; ++Col) {
        float Acc = Beta * PC[Row * N + Col];
        for (int64_t K2 = 0; K2 != N; ++K2)
          Acc += Alpha * PA[Row * N + K2] * PB[K2 * N + Col];
        PE[Row * N + Col] = Acc;
      }
  };
  return I;
}

BenchmarkInstance make3mm(int64_t N) {
  BenchmarkInstance I;
  I.Name = "3mm";
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 6);
  Buffer<float> *B = addBuffer<float>(I, "B", {N, N}, 7);
  Buffer<float> *Cm = addBuffer<float>(I, "Cm", {N, N}, 8);
  Buffer<float> *D = addBuffer<float>(I, "D", {N, N}, 9);
  addBuffer<float>(I, "E", {N, N}, 0);
  addBuffer<float>(I, "F", {N, N}, 0);
  addBuffer<float>(I, "G", {N, N}, 0);
  Buffer<float> *Want = addExpected<float>(I, {N, N});

  Var J("j"), Iv("i");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer BIn("B", ir::Type::float32(), 2);
  InputBuffer CmIn("Cm", ir::Type::float32(), 2);
  InputBuffer DIn("D", ir::Type::float32(), 2);
  InputBuffer EIn("E", ir::Type::float32(), 2);
  InputBuffer FIn("F", ir::Type::float32(), 2);

  RDom K1(0, static_cast<int>(N), "k1");
  Func E("E");
  E(J, Iv) = 0.0f;
  E(J, Iv) += AIn(K1, Iv) * BIn(J, K1);

  RDom K2(0, static_cast<int>(N), "k2");
  Func F("F");
  F(J, Iv) = 0.0f;
  F(J, Iv) += CmIn(K2, Iv) * DIn(J, K2);

  RDom K3(0, static_cast<int>(N), "k3");
  Func G("G");
  G(J, Iv) = 0.0f;
  G(J, Iv) += EIn(K3, Iv) * FIn(J, K3);

  I.Stages = {E, F, G};
  I.StageExtents = {{N, N}, {N, N}, {N, N}};
  I.OutputName = "G";
  I.Work = 6.0 * static_cast<double>(N) * N * N;
  I.FillExpected = [A, B, Cm, D, Want, N] {
    std::vector<float> TE(static_cast<size_t>(N * N));
    std::vector<float> TF(static_cast<size_t>(N * N));
    const float *PA = A->data(), *PB = B->data(), *PC = Cm->data(),
                *PD = D->data();
    for (int64_t R = 0; R != N; ++R)
      for (int64_t C2 = 0; C2 != N; ++C2) {
        float AccE = 0.0f, AccF = 0.0f;
        for (int64_t K = 0; K != N; ++K) {
          AccE += PA[R * N + K] * PB[K * N + C2];
          AccF += PC[R * N + K] * PD[K * N + C2];
        }
        TE[static_cast<size_t>(R * N + C2)] = AccE;
        TF[static_cast<size_t>(R * N + C2)] = AccF;
      }
    float *PW = Want->data();
    for (int64_t R = 0; R != N; ++R)
      for (int64_t C2 = 0; C2 != N; ++C2) {
        float Acc = 0.0f;
        for (int64_t K = 0; K != N; ++K)
          Acc += TE[static_cast<size_t>(R * N + K)] *
                 TF[static_cast<size_t>(K * N + C2)];
        PW[R * N + C2] = Acc;
      }
  };
  return I;
}

BenchmarkInstance makeTrmm(int64_t N) {
  BenchmarkInstance I;
  I.Name = "trmm";
  const float Alpha = 1.1f;
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 10);
  Buffer<float> *B = addBuffer<float>(I, "B", {N, N}, 11);
  addBuffer<float>(I, "Bout", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  // Out-of-place triangular matmul: Bout = alpha * (A^T_lower * B + B),
  // with the strictly-lower-triangular part of A (k > i) contributing.
  Var J("j"), Iv("i");
  RDom K(0, static_cast<int>(N), "k");
  K.where(Expr(K) > Expr(Iv));
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer BIn("B", ir::Type::float32(), 2);
  Func Bout("Bout");
  Bout(J, Iv) = Alpha * BIn(J, Iv);
  Bout(J, Iv) += Alpha * AIn(Iv, K) * BIn(J, K);

  I.Stages = {Bout};
  I.StageExtents = {{N, N}};
  I.OutputName = "Bout";
  I.Work = static_cast<double>(N) * N * N; // ~half the cube, x2 flops
  I.FillExpected = [A, B, E, N, Alpha] {
    const float *PA = A->data(), *PB = B->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row)
      for (int64_t Col = 0; Col != N; ++Col) {
        float Acc = PB[Row * N + Col];
        for (int64_t K2 = Row + 1; K2 < N; ++K2)
          Acc += PA[K2 * N + Row] * PB[K2 * N + Col];
        PE[Row * N + Col] = Alpha * Acc;
      }
  };
  return I;
}

BenchmarkInstance makeSyrk(int64_t N) {
  BenchmarkInstance I;
  I.Name = "syrk";
  const float Alpha = 1.3f, Beta = 0.7f;
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 12);
  Buffer<float> *Cin = addBuffer<float>(I, "Cin", {N, N}, 13);
  addBuffer<float>(I, "C", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  Var J("j"), Iv("i");
  RDom K(0, static_cast<int>(N), "k");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer CIn("Cin", ir::Type::float32(), 2);
  Func C("C");
  C(J, Iv) = Beta * CIn(J, Iv);
  C(J, Iv) += Alpha * AIn(K, Iv) * AIn(K, J);

  I.Stages = {C};
  I.StageExtents = {{N, N}};
  I.OutputName = "C";
  I.Work = 2.0 * static_cast<double>(N) * N * N;
  I.FillExpected = [A, Cin, E, N, Alpha, Beta] {
    const float *PA = A->data(), *PC = Cin->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row)
      for (int64_t Col = 0; Col != N; ++Col) {
        float Acc = Beta * PC[Row * N + Col];
        for (int64_t K2 = 0; K2 != N; ++K2)
          Acc += Alpha * PA[Row * N + K2] * PA[Col * N + K2];
        PE[Row * N + Col] = Acc;
      }
  };
  return I;
}

BenchmarkInstance makeSyr2k(int64_t N) {
  BenchmarkInstance I;
  I.Name = "syr2k";
  const float Alpha = 0.8f, Beta = 1.4f;
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N}, 14);
  Buffer<float> *B = addBuffer<float>(I, "B", {N, N}, 15);
  Buffer<float> *Cin = addBuffer<float>(I, "Cin", {N, N}, 16);
  addBuffer<float>(I, "C", {N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N});

  Var J("j"), Iv("i");
  RDom K(0, static_cast<int>(N), "k");
  InputBuffer AIn("A", ir::Type::float32(), 2);
  InputBuffer BIn("B", ir::Type::float32(), 2);
  InputBuffer CIn("Cin", ir::Type::float32(), 2);
  Func C("C");
  C(J, Iv) = Beta * CIn(J, Iv);
  C(J, Iv) +=
      Alpha * AIn(K, Iv) * BIn(K, J) + Alpha * BIn(K, Iv) * AIn(K, J);

  I.Stages = {C};
  I.StageExtents = {{N, N}};
  I.OutputName = "C";
  I.Work = 4.0 * static_cast<double>(N) * N * N;
  I.FillExpected = [A, B, Cin, E, N, Alpha, Beta] {
    const float *PA = A->data(), *PB = B->data(), *PC = Cin->data();
    float *PE = E->data();
    for (int64_t Row = 0; Row != N; ++Row)
      for (int64_t Col = 0; Col != N; ++Col) {
        float Acc = Beta * PC[Row * N + Col];
        for (int64_t K2 = 0; K2 != N; ++K2)
          Acc += Alpha * PA[Row * N + K2] * PB[Col * N + K2] +
                 Alpha * PB[Row * N + K2] * PA[Col * N + K2];
        PE[Row * N + Col] = Acc;
      }
  };
  return I;
}

BenchmarkInstance makeDoitgen(int64_t N) {
  BenchmarkInstance I;
  I.Name = "doitgen";
  // Out(p, q, r) = sum_s A(s, q, r) * C4(p, s).
  Buffer<float> *A = addBuffer<float>(I, "A", {N, N, N}, 17);
  Buffer<float> *C4 = addBuffer<float>(I, "C4", {N, N}, 18);
  addBuffer<float>(I, "Out", {N, N, N}, 0);
  Buffer<float> *E = addExpected<float>(I, {N, N, N});

  Var P("p"), Q("q"), R("r");
  RDom S(0, static_cast<int>(N), "s");
  InputBuffer AIn("A", ir::Type::float32(), 3);
  InputBuffer C4In("C4", ir::Type::float32(), 2);
  Func Out("Out");
  Out(P, Q, R) = 0.0f;
  Out(P, Q, R) += AIn(S, Q, R) * C4In(P, S);

  I.Stages = {Out};
  I.StageExtents = {{N, N, N}};
  I.OutputName = "Out";
  I.Work = 2.0 * static_cast<double>(N) * N * N * N;
  I.FillExpected = [A, C4, E, N] {
    const float *PA = A->data(), *PC = C4->data();
    float *PE = E->data();
    for (int64_t R2 = 0; R2 != N; ++R2)
      for (int64_t Q2 = 0; Q2 != N; ++Q2)
        for (int64_t P2 = 0; P2 != N; ++P2) {
          float Acc = 0.0f;
          for (int64_t S2 = 0; S2 != N; ++S2)
            Acc += PA[(R2 * N + Q2) * N + S2] * PC[S2 * N + P2];
          PE[(R2 * N + Q2) * N + P2] = Acc;
        }
  };
  return I;
}

BenchmarkInstance makeConvLayer(int64_t Size) {
  BenchmarkInstance I;
  I.Name = "convlayer";
  // out(x, y, k, b) = sum_{rx, ry, c} in(x+rx, y+ry, c, b) * w(rx, ry, c, k)
  const int64_t W = Size, H = Size;
  const int64_t Ch = std::min<int64_t>(64, std::max<int64_t>(8, Size / 4));
  const int64_t K = Ch;
  const int64_t B = std::max<int64_t>(1, Size / 64);
  Buffer<float> *In =
      addBuffer<float>(I, "In", {W + 2, H + 2, Ch, B}, 19);
  Buffer<float> *Wgt = addBuffer<float>(I, "Wgt", {3, 3, Ch, K}, 20);
  addBuffer<float>(I, "Out", {W, H, K, B}, 0);
  Buffer<float> *E = addExpected<float>(I, {W, H, K, B});

  Var X("x"), Y("y"), Kv("ko"), Bv("b");
  RDom R(std::vector<RVar>{RVar("rx", 0, 3), RVar("ry", 0, 3),
                           RVar("rc", 0, static_cast<int>(Ch))});
  InputBuffer InB("In", ir::Type::float32(), 4);
  InputBuffer WgtB("Wgt", ir::Type::float32(), 4);
  Func Out("Out");
  Out(X, Y, Kv, Bv) = 0.0f;
  Out(X, Y, Kv, Bv) += InB(Expr(X) + Expr(R[0]), Expr(Y) + Expr(R[1]),
                           R[2], Bv) *
                       WgtB(R[0], R[1], R[2], Kv);

  I.Stages = {Out};
  I.StageExtents = {{W, H, K, B}};
  I.OutputName = "Out";
  I.Work = 2.0 * 9.0 * static_cast<double>(Ch) * W * H * K * B;
  I.FillExpected = [In, Wgt, E, W, H, Ch, K, B] {
    const float *PI = In->data(), *PW = Wgt->data();
    float *PE = E->data();
    int64_t IW = W + 2, IH = H + 2;
    for (int64_t B2 = 0; B2 != B; ++B2)
      for (int64_t K2 = 0; K2 != K; ++K2)
        for (int64_t Y2 = 0; Y2 != H; ++Y2)
          for (int64_t X2 = 0; X2 != W; ++X2) {
            float Acc = 0.0f;
            for (int64_t C2 = 0; C2 != Ch; ++C2)
              for (int64_t RY = 0; RY != 3; ++RY)
                for (int64_t RX = 0; RX != 3; ++RX)
                  Acc += PI[((B2 * Ch + C2) * IH + (Y2 + RY)) * IW +
                            (X2 + RX)] *
                         PW[((K2 * Ch + C2) * 3 + RY) * 3 + RX];
            PE[((B2 * K + K2) * H + Y2) * W + X2] = Acc;
          }
  };
  return I;
}

//===----------------------------------------------------------------------===//
// Spatial-reuse and streaming kernels
//===----------------------------------------------------------------------===//

BenchmarkInstance makeTranspose(int64_t N) {
  BenchmarkInstance I;
  I.Name = "tp";
  Buffer<uint32_t> *A = addBuffer<uint32_t>(I, "A", {N, N}, 21);
  addBuffer<uint32_t>(I, "Out", {N, N}, 0);
  Buffer<uint32_t> *E = addExpected<uint32_t>(I, {N, N});

  Var X("x"), Y("y");
  InputBuffer AIn("A", ir::Type::uint32(), 2);
  Func Out("Out");
  Out(X, Y) = AIn(Y, X);

  I.Stages = {Out};
  I.StageExtents = {{N, N}};
  I.OutputName = "Out";
  I.Work = static_cast<double>(N) * N;
  I.FillExpected = [A, E, N] {
    const uint32_t *PA = A->data();
    uint32_t *PE = E->data();
    for (int64_t Y2 = 0; Y2 != N; ++Y2)
      for (int64_t X2 = 0; X2 != N; ++X2)
        PE[Y2 * N + X2] = PA[X2 * N + Y2];
  };
  return I;
}

BenchmarkInstance makeTpm(int64_t N) {
  BenchmarkInstance I;
  I.Name = "tpm";
  Buffer<uint32_t> *A = addBuffer<uint32_t>(I, "A", {N, N}, 22);
  Buffer<uint32_t> *B = addBuffer<uint32_t>(I, "B", {N, N}, 23);
  addBuffer<uint32_t>(I, "Out", {N, N}, 0);
  Buffer<uint32_t> *E = addExpected<uint32_t>(I, {N, N});

  // Listing 2: out[y][x] = A[x][y] & B[y][x].
  Var X("x"), Y("y");
  InputBuffer AIn("A", ir::Type::uint32(), 2);
  InputBuffer BIn("B", ir::Type::uint32(), 2);
  Func Out("Out");
  Out(X, Y) = AIn(Y, X) & BIn(X, Y);

  I.Stages = {Out};
  I.StageExtents = {{N, N}};
  I.OutputName = "Out";
  I.Work = static_cast<double>(N) * N;
  I.FillExpected = [A, B, E, N] {
    const uint32_t *PA = A->data(), *PB = B->data();
    uint32_t *PE = E->data();
    for (int64_t Y2 = 0; Y2 != N; ++Y2)
      for (int64_t X2 = 0; X2 != N; ++X2)
        PE[Y2 * N + X2] = PA[X2 * N + Y2] & PB[Y2 * N + X2];
  };
  return I;
}

BenchmarkInstance makeCopy(int64_t N) {
  BenchmarkInstance I;
  I.Name = "copy";
  Buffer<uint32_t> *A = addBuffer<uint32_t>(I, "A", {N, N}, 24);
  addBuffer<uint32_t>(I, "Out", {N, N}, 0);
  Buffer<uint32_t> *E = addExpected<uint32_t>(I, {N, N});

  Var X("x"), Y("y");
  InputBuffer AIn("A", ir::Type::uint32(), 2);
  Func Out("Out");
  Out(X, Y) = AIn(X, Y);

  I.Stages = {Out};
  I.StageExtents = {{N, N}};
  I.OutputName = "Out";
  I.Work = static_cast<double>(N) * N;
  I.FillExpected = [A, E, N] {
    const uint32_t *PA = A->data();
    uint32_t *PE = E->data();
    std::copy(PA, PA + N * N, PE);
  };
  return I;
}

BenchmarkInstance makeMask(int64_t N) {
  BenchmarkInstance I;
  I.Name = "mask";
  Buffer<uint32_t> *A = addBuffer<uint32_t>(I, "A", {N, N}, 25);
  Buffer<uint32_t> *B = addBuffer<uint32_t>(I, "B", {N, N}, 26);
  addBuffer<uint32_t>(I, "Out", {N, N}, 0);
  Buffer<uint32_t> *E = addExpected<uint32_t>(I, {N, N});

  Var X("x"), Y("y");
  InputBuffer AIn("A", ir::Type::uint32(), 2);
  InputBuffer BIn("B", ir::Type::uint32(), 2);
  Func Out("Out");
  Out(X, Y) = AIn(X, Y) & BIn(X, Y);

  I.Stages = {Out};
  I.StageExtents = {{N, N}};
  I.OutputName = "Out";
  I.Work = static_cast<double>(N) * N;
  I.FillExpected = [A, B, E, N] {
    const uint32_t *PA = A->data(), *PB = B->data();
    uint32_t *PE = E->data();
    for (int64_t Idx = 0; Idx != N * N; ++Idx)
      PE[Idx] = PA[Idx] & PB[Idx];
  };
  return I;
}

} // namespace

const std::vector<BenchmarkDef> &ltp::allBenchmarks() {
  static const std::vector<BenchmarkDef> Defs = {
      {"convlayer", "3x3xCxC convolution layer", 96, 256, makeConvLayer},
      {"doitgen", "multiresolution analysis kernel", 128, 256, makeDoitgen},
      {"matmul", "matrix multiplication", 1024, 2048, makeMatmul},
      {"3mm", "three chained matrix multiplications", 768, 2048, make3mm},
      {"gemm", "generalized matrix multiplication", 1024, 2048, makeGemm},
      {"trmm", "triangular matrix multiplication (out-of-place)", 1024,
       2048, makeTrmm},
      {"syrk", "symmetric rank-k update", 1024, 2048, makeSyrk},
      {"syr2k", "symmetric rank-2k update", 768, 2048, makeSyr2k},
      {"tpm", "matrix transposition and masking", 2048, 4096, makeTpm},
      {"tp", "matrix transposition", 2048, 4096, makeTranspose},
      {"copy", "array copy", 2048, 4096, makeCopy},
      {"mask", "array mask", 2048, 4096, makeMask},
  };
  return Defs;
}

const BenchmarkDef *ltp::findBenchmark(const std::string &Name) {
  for (const BenchmarkDef &Def : allBenchmarks())
    if (Def.Name == Name)
      return &Def;
  for (const BenchmarkDef &Def : extendedBenchmarks())
    if (Def.Name == Name)
      return &Def;
  return nullptr;
}

bool ltp::verifyOutput(const BenchmarkInstance &Instance) {
  assert(Instance.FillExpected && "benchmark lacks a reference oracle");
  Instance.FillExpected();
  auto It = Instance.Buffers.find(Instance.OutputName);
  assert(It != Instance.Buffers.end() && "output buffer missing");
  const BufferRef &Out = It->second;
  const BufferRef &Want = Instance.ExpectedRef;
  assert(Out.numElements() == Want.numElements() &&
         "output/expected shape mismatch");

  if (Out.ElemType == ir::Type::float32()) {
    const float *PO = static_cast<const float *>(Out.Data);
    const float *PW = static_cast<const float *>(Want.Data);
    for (int64_t Idx = 0; Idx != Out.numElements(); ++Idx) {
      double Tolerance = 1e-3 * (1.0 + std::fabs(PW[Idx]));
      if (std::fabs(PO[Idx] - PW[Idx]) > Tolerance)
        return false;
    }
    return true;
  }
  if (Out.ElemType == ir::Type::uint32()) {
    const uint32_t *PO = static_cast<const uint32_t *>(Out.Data);
    const uint32_t *PW = static_cast<const uint32_t *>(Want.Data);
    for (int64_t Idx = 0; Idx != Out.numElements(); ++Idx)
      if (PO[Idx] != PW[Idx])
        return false;
    return true;
  }
  assert(false && "unsupported output element type");
  return false;
}
