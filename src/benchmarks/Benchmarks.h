//===- Benchmarks.h - the 12 paper benchmarks (Table 4) ---------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of Table 4 as DSL pipelines with input generators,
/// native reference implementations (correctness oracles) and the
/// paper's / container-scaled problem sizes:
///
///   convlayer  3x3xCxC convolution layer        (temporal)
///   doitgen    multiresolution analysis kernel  (temporal)
///   matmul     matrix multiplication            (temporal)
///   3mm        three chained matmuls            (temporal)
///   gemm       generalized matmul               (temporal)
///   trmm       triangular matmul (out-of-place; see DESIGN.md)
///   syrk       symmetric rank-k update          (temporal)
///   syr2k      symmetric rank-2k update         (temporal)
///   tpm        transposition + masking          (spatial, NTI)
///   tp         transposition                    (spatial, NTI)
///   copy       array copy                       (no-transform, NTI)
///   mask       array mask                       (no-transform, NTI)
///
//===----------------------------------------------------------------------===//

#ifndef LTP_BENCHMARKS_BENCHMARKS_H
#define LTP_BENCHMARKS_BENCHMARKS_H

#include "lang/Func.h"
#include "runtime/Buffer.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ltp {

/// A fully materialized benchmark: pipeline stages, bound buffers, and a
/// reference oracle.
struct BenchmarkInstance {
  std::string Name;
  /// Pipeline stages in realization order (compute_root semantics: each
  /// stage realizes fully into its named buffer before the next runs).
  std::vector<Func> Stages;
  /// Output extents of each stage (dimension 0 first).
  std::vector<std::vector<int64_t>> StageExtents;
  /// All buffers by name: external inputs plus every stage output.
  std::map<std::string, BufferRef> Buffers;
  /// Name of the final output buffer.
  std::string OutputName;
  /// Computes the expected output into ExpectedRef (native loops).
  std::function<void()> FillExpected;
  BufferRef ExpectedRef;
  /// Floating-point (or element) operations per full run, for reporting.
  double Work = 0.0;
  /// Keeps the typed buffers alive.
  std::vector<std::shared_ptr<void>> Storage;
};

/// Static description of one benchmark.
struct BenchmarkDef {
  std::string Name;
  std::string Description;
  /// Container-scaled default problem size.
  int64_t DefaultSize;
  /// The paper's Table-4 problem size.
  int64_t PaperSize;
  /// Materializes an instance at the given size.
  std::function<BenchmarkInstance(int64_t)> Create;
};

/// All Table-4 benchmarks, in the paper's order.
const std::vector<BenchmarkDef> &allBenchmarks();

/// Kernels beyond the paper's suite (PolyBench gemver/atax/mvt/bicg and a
/// Jacobi stencil) exercising 1-D reductions, multi-stage pipelines and
/// the stencil classification path. Defined in ExtendedBenchmarks.cpp.
const std::vector<BenchmarkDef> &extendedBenchmarks();

/// Finds a benchmark by name in either suite; null when unknown.
const BenchmarkDef *findBenchmark(const std::string &Name);

/// Compares the final output against the reference oracle (which is
/// computed on demand). Returns true when every element matches within a
/// type-appropriate tolerance.
bool verifyOutput(const BenchmarkInstance &Instance);

} // namespace ltp

#endif // LTP_BENCHMARKS_BENCHMARKS_H
