//===- MetricsCheck.cpp - Prometheus exposition validation ----------------===//

#include "obs/MetricsCheck.h"

#include "support/Format.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

using namespace ltp;
using namespace ltp::obs;

namespace {

bool isNameStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
         C == ':';
}

bool isNameChar(char C) {
  return isNameStart(C) || (C >= '0' && C <= '9');
}

bool validMetricName(const std::string &Name) {
  if (Name.empty() || !isNameStart(Name[0]))
    return false;
  for (char C : Name)
    if (!isNameChar(C))
      return false;
  return true;
}

/// One parsed sample line.
struct Sample {
  std::string Name;
  std::string Labels; ///< raw text between braces, possibly empty
  double Value = 0.0;
  size_t LineNo = 0;
};

/// Per-family accumulated state.
struct Family {
  std::string Type; ///< "counter" / "gauge" / "histogram"
  std::vector<Sample> Buckets;
  bool SawSum = false;
  bool SawCount = false;
  double Sum = 0.0;
  double Count = -1.0;
  size_t Samples = 0;
};

bool fail(std::string *Error, size_t LineNo, const std::string &Line,
          const std::string &Why) {
  if (Error)
    *Error = strFormat("line %zu: %s: %s", LineNo, Why.c_str(), Line.c_str());
  return false;
}

/// Parses `name{labels} value` / `name value`. Returns false on grammar
/// errors.
bool parseSample(const std::string &Line, Sample *Out, std::string *Why) {
  size_t I = 0;
  while (I < Line.size() && isNameChar(Line[I]))
    ++I;
  Out->Name = Line.substr(0, I);
  if (!validMetricName(Out->Name)) {
    *Why = "invalid metric name";
    return false;
  }
  if (I < Line.size() && Line[I] == '{') {
    size_t Close = Line.find('}', I);
    if (Close == std::string::npos) {
      *Why = "unterminated label set";
      return false;
    }
    Out->Labels = Line.substr(I + 1, Close - I - 1);
    I = Close + 1;
  }
  if (I >= Line.size() || Line[I] != ' ') {
    *Why = "expected ' ' before value";
    return false;
  }
  while (I < Line.size() && Line[I] == ' ')
    ++I;
  const std::string ValueText = Line.substr(I);
  if (ValueText.empty()) {
    *Why = "missing value";
    return false;
  }
  char *End = nullptr;
  Out->Value = std::strtod(ValueText.c_str(), &End);
  if (End == ValueText.c_str() || *End != '\0') {
    *Why = "unparseable value";
    return false;
  }
  if (std::isnan(Out->Value)) {
    *Why = "NaN value";
    return false;
  }
  return true;
}

/// Extracts the `le` bound from a bucket label set. Returns false when
/// absent/malformed; +Inf parses to infinity.
bool parseLeBound(const std::string &Labels, double *Bound,
                  std::string *Why) {
  const std::string Prefix = "le=\"";
  size_t Pos = Labels.find(Prefix);
  if (Pos == std::string::npos) {
    *Why = "_bucket sample without le label";
    return false;
  }
  size_t Start = Pos + Prefix.size();
  size_t End = Labels.find('"', Start);
  if (End == std::string::npos) {
    *Why = "unterminated le label";
    return false;
  }
  const std::string Text = Labels.substr(Start, End - Start);
  if (Text == "+Inf") {
    *Bound = std::numeric_limits<double>::infinity();
    return true;
  }
  char *NumEnd = nullptr;
  *Bound = std::strtod(Text.c_str(), &NumEnd);
  if (NumEnd == Text.c_str() || *NumEnd != '\0' || std::isnan(*Bound)) {
    *Why = "unparseable le bound";
    return false;
  }
  return true;
}

/// Strips a histogram sample suffix, returning the family name the
/// sample belongs to given the set of declared families.
std::string familyOf(const std::string &Name,
                     const std::map<std::string, Family> &Families,
                     std::string *Suffix) {
  static const char *Suffixes[] = {"_bucket", "_sum", "_count"};
  for (const char *S : Suffixes) {
    std::string Suf(S);
    if (Name.size() > Suf.size() &&
        Name.compare(Name.size() - Suf.size(), Suf.size(), Suf) == 0) {
      std::string Base = Name.substr(0, Name.size() - Suf.size());
      auto It = Families.find(Base);
      if (It != Families.end() && It->second.Type == "histogram") {
        *Suffix = Suf;
        return Base;
      }
    }
  }
  *Suffix = "";
  return Name;
}

bool checkHistogramFamily(const std::string &Name, const Family &F,
                          std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = strFormat("histogram %s: %s", Name.c_str(), Why.c_str());
    return false;
  };
  if (!F.SawSum)
    return Fail("missing _sum sample");
  if (!F.SawCount)
    return Fail("missing _count sample");
  if (F.Buckets.empty())
    return Fail("no _bucket samples");
  if (!std::isfinite(F.Sum))
    return Fail("_sum is not finite");

  double PreviousBound = -std::numeric_limits<double>::infinity();
  double PreviousCount = -1.0;
  bool SawInf = false;
  for (const Sample &B : F.Buckets) {
    if (SawInf)
      return Fail("+Inf bucket is not last");
    std::string Why;
    double Bound = 0.0;
    if (!parseLeBound(B.Labels, &Bound, &Why))
      return Fail(Why);
    if (std::isinf(Bound))
      SawInf = true;
    else if (Bound <= PreviousBound)
      return Fail(strFormat("le bounds not strictly increasing at le=%g",
                            Bound));
    PreviousBound = std::isinf(Bound) ? PreviousBound : Bound;
    if (B.Value < 0.0)
      return Fail("negative bucket count");
    if (B.Value < PreviousCount)
      return Fail("bucket counts are not cumulative");
    PreviousCount = B.Value;
  }
  if (!SawInf)
    return Fail("missing +Inf bucket");
  if (F.Buckets.back().Value != F.Count)
    return Fail(strFormat("+Inf bucket (%g) != _count (%g)",
                          F.Buckets.back().Value, F.Count));
  return true;
}

} // namespace

bool ltp::obs::checkMetricsText(const std::string &Text, std::string *Summary,
                                std::string *Error) {
  std::map<std::string, Family> Families;
  std::vector<std::string> Order;
  size_t SampleCount = 0;
  size_t LineNo = 0;

  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      // Only TYPE comments are structural; HELP and free comments pass.
      std::istringstream Comment(Line);
      std::string Hash, Keyword, Name, Type;
      Comment >> Hash >> Keyword;
      if (Keyword != "TYPE")
        continue;
      if (!(Comment >> Name >> Type))
        return fail(Error, LineNo, Line, "malformed TYPE line");
      if (!validMetricName(Name))
        return fail(Error, LineNo, Line, "invalid family name");
      if (Type != "counter" && Type != "gauge" && Type != "histogram")
        return fail(Error, LineNo, Line, "unknown family type " + Type);
      if (Families.count(Name))
        return fail(Error, LineNo, Line, "duplicate TYPE for " + Name);
      Families[Name].Type = Type;
      Order.push_back(Name);
      continue;
    }

    Sample S;
    std::string Why;
    if (!parseSample(Line, &S, &Why))
      return fail(Error, LineNo, Line, Why);
    S.LineNo = LineNo;
    ++SampleCount;

    std::string Suffix;
    std::string FamilyName = familyOf(S.Name, Families, &Suffix);
    auto It = Families.find(FamilyName);
    if (It == Families.end())
      return fail(Error, LineNo, Line,
                  "sample without preceding TYPE declaration");
    Family &F = It->second;
    ++F.Samples;
    if (F.Type == "histogram") {
      if (Suffix == "_bucket") {
        F.Buckets.push_back(S);
      } else if (Suffix == "_sum") {
        if (F.SawSum)
          return fail(Error, LineNo, Line, "duplicate _sum");
        F.SawSum = true;
        F.Sum = S.Value;
      } else if (Suffix == "_count") {
        if (F.SawCount)
          return fail(Error, LineNo, Line, "duplicate _count");
        F.SawCount = true;
        F.Count = S.Value;
      } else {
        return fail(Error, LineNo, Line,
                    "histogram sample without _bucket/_sum/_count suffix");
      }
    } else {
      if (F.Type == "counter" && S.Value < 0.0)
        return fail(Error, LineNo, Line, "negative counter value");
      if (F.Samples > 1)
        return fail(Error, LineNo, Line, "duplicate sample for " + S.Name);
    }
  }

  size_t Counters = 0;
  size_t Gauges = 0;
  size_t Histograms = 0;
  for (const auto &[Name, F] : Families) {
    if (F.Type == "histogram") {
      ++Histograms;
      if (!checkHistogramFamily(Name, F, Error))
        return false;
    } else if (F.Type == "counter") {
      ++Counters;
    } else {
      ++Gauges;
    }
    if (F.Samples == 0) {
      if (Error)
        *Error = strFormat("family %s declared but has no samples",
                           Name.c_str());
      return false;
    }
  }

  if (Summary)
    *Summary = strFormat("%zu families (%zu counters, %zu gauges, "
                         "%zu histograms), %zu samples",
                         Families.size(), Counters, Gauges, Histograms,
                         SampleCount);
  return true;
}

bool ltp::obs::checkMetricsFile(const std::string &Path, std::string *Summary,
                                std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open file";
    return false;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  return checkMetricsText(Text.str(), Summary, Error);
}

std::vector<std::string> ltp::obs::metricFamilyNames(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Comment(Line);
    std::string Hash, Keyword, Name;
    Comment >> Hash >> Keyword;
    if (Hash == "#" && Keyword == "TYPE" && (Comment >> Name))
      Out.push_back(Name);
  }
  return Out;
}
