//===- FlightRecorder.cpp - ring buffer of recent request digests ---------===//

#include "obs/FlightRecorder.h"

#include "obs/Log.h"
#include "support/Format.h"

#include <atomic>

using namespace ltp;
using namespace ltp::obs;

std::string ltp::obs::digestJson(const RequestDigest &D) {
  std::string Out = "{";
  Out += strFormat("\"request_id\": \"%s\"", jsonEscape(D.RequestId).c_str());
  Out += strFormat(", \"op\": \"%s\"", jsonEscape(D.Op).c_str());
  if (!D.Kernel.empty())
    Out += strFormat(", \"kernel\": \"%s\"", jsonEscape(D.Kernel).c_str());
  if (!D.KeyHash.empty())
    Out += strFormat(", \"key\": \"%s\"", jsonEscape(D.KeyHash).c_str());
  if (!D.Dedup.empty())
    Out += strFormat(", \"dedup\": \"%s\"", jsonEscape(D.Dedup).c_str());
  Out += strFormat(", \"ok\": %s", D.Ok ? "true" : "false");
  if (!D.Error.empty())
    Out += strFormat(", \"error\": \"%s\"", jsonEscape(D.Error).c_str());
  if (!D.SoPath.empty())
    Out += strFormat(", \"so\": \"%s\"", jsonEscape(D.SoPath).c_str());
  Out += strFormat(", \"unix_ms\": %lld",
                   static_cast<long long>(D.UnixMillis));
  Out += strFormat(", \"total_ms\": %.4f", D.TotalMillis);
  if (D.OptMillis > 0.0)
    Out += strFormat(", \"opt_ms\": %.4f", D.OptMillis);
  if (D.CompileMillis > 0.0)
    Out += strFormat(", \"compile_ms\": %.4f", D.CompileMillis);
  if (!D.StageMillis.empty()) {
    Out += ", \"stages\": {";
    bool First = true;
    for (const auto &[Stage, Millis] : D.StageMillis) {
      if (!First)
        Out += ", ";
      First = false;
      Out += strFormat("\"%s\": %.4f", jsonEscape(Stage).c_str(), Millis);
    }
    Out += "}";
  }
  Out += "}";
  return Out;
}

FlightRecorder::FlightRecorder(size_t Capacity)
    : Cap(Capacity == 0 ? 1 : Capacity) {
  Ring.reserve(Cap);
}

void FlightRecorder::record(RequestDigest D) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Ring.size() < Cap) {
    Ring.push_back(std::move(D));
  } else {
    Ring[Next] = std::move(D);
  }
  Next = (Next + 1) % Cap;
  ++Recorded;
}

std::vector<RequestDigest> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<RequestDigest> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Cap) {
    Out = Ring;
  } else {
    // The ring is full: Next is the oldest entry.
    for (size_t I = 0; I != Cap; ++I)
      Out.push_back(Ring[(Next + I) % Cap]);
  }
  return Out;
}

uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded;
}

std::string FlightRecorder::requestsJsonArray() const {
  std::vector<RequestDigest> Digests = snapshot();
  std::string Out = "[";
  for (size_t I = 0; I != Digests.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += digestJson(Digests[I]);
  }
  Out += "]";
  return Out;
}

std::string FlightRecorder::dumpJson() const {
  uint64_t Total = totalRecorded();
  return strFormat("{\"flight_recorder\": %s, \"capacity\": %zu, "
                   "\"recorded\": %llu}",
                   requestsJsonArray().c_str(), Cap,
                   static_cast<unsigned long long>(Total));
}

FlightRecorder &ltp::obs::flightRecorder() {
  // Never destroyed: connection threads may record during teardown.
  static FlightRecorder *Recorder = new FlightRecorder();
  return *Recorder;
}

namespace {

std::atomic<double> SlowThresholdMs{1000.0};

} // namespace

double ltp::obs::slowRequestThresholdMs() {
  return SlowThresholdMs.load(std::memory_order_relaxed);
}

void ltp::obs::setSlowRequestThresholdMs(double Millis) {
  SlowThresholdMs.store(Millis, std::memory_order_relaxed);
}
