//===- MetricsCheck.h - Prometheus exposition validation --------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validation of the Prometheus text exposition the metrics layer writes
/// (renderPrometheusText), in the spirit of JsonCheck: production code
/// only ever *writes* the format; this checker exists so tests and the
/// `ltp-metrics-check` CI tool can prove the output is well-formed and
/// the histogram invariants hold — `le` bounds strictly increasing,
/// bucket counts cumulative, `+Inf` equal to `_count`, `_sum`/`_count`
/// present — rather than trusting the writer.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_METRICSCHECK_H
#define LTP_OBS_METRICSCHECK_H

#include <string>
#include <vector>

namespace ltp {
namespace obs {

/// Validates \p Text as Prometheus text exposition format as produced by
/// renderPrometheusText: every sample belongs to a `# TYPE`-declared
/// family, values parse, and every histogram family satisfies the
/// invariants above. Fills \p Summary with family/sample counts on
/// success and \p Error (with the offending line) on failure.
bool checkMetricsText(const std::string &Text, std::string *Summary,
                      std::string *Error);

/// File variant of checkMetricsText.
bool checkMetricsFile(const std::string &Path, std::string *Summary,
                      std::string *Error);

/// The family names declared by `# TYPE` lines in \p Text, in order of
/// declaration (used by ltp-metrics-check --require-metric).
std::vector<std::string> metricFamilyNames(const std::string &Text);

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_METRICSCHECK_H
