//===- PerfCounters.h - Linux perf_event hardware counters ------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin wrapper over `perf_event_open(2)` reading the PMU cache
/// counters the model-validation harness needs: L1D read accesses and
/// misses, and last-level-cache read accesses and misses. This is how
/// the reproduction closes the loop the paper closes with PAPI
/// (Section 5): simulator-predicted miss rates vs what the hardware
/// actually did.
///
/// Counters are opened with `inherit=1` so pool threads spawned *after*
/// the open are counted too — open the set before the first parallel
/// kernel run (which spins up the global thread pool). Reads sum the
/// parent and every inherited child, so snapshot deltas around a region
/// cover all worker threads.
///
/// Containers and locked-down hosts routinely refuse perf_event_open
/// (perf_event_paranoid, seccomp, missing PMU virtualization). Every
/// entry point degrades gracefully: `available()` probes without side
/// effects and a failed open yields a set whose counters read as
/// unavailable rather than an error.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_PERFCOUNTERS_H
#define LTP_OBS_PERFCOUNTERS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ltp {
namespace obs {

/// The cache events the validation harness compares against the
/// simulator.
enum class PerfEvent {
  L1DReadAccess,
  L1DReadMiss,
  LLCReadAccess,
  LLCReadMiss,
};

const char *perfEventName(PerfEvent E);

/// One snapshot of every open counter (same order as events()).
struct PerfSnapshot {
  std::vector<uint64_t> Values;
};

/// A set of simultaneously-counting PMU events for this process.
class PerfCounterSet {
public:
  /// Opens every event in \p Events that the host allows. Events the
  /// kernel refuses are recorded as unavailable instead of failing the
  /// whole set.
  explicit PerfCounterSet(const std::vector<PerfEvent> &Events);
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet &) = delete;
  PerfCounterSet &operator=(const PerfCounterSet &) = delete;

  /// The events this set was asked to open.
  const std::vector<PerfEvent> &events() const { return Events; }

  /// True when at least one event opened successfully.
  bool anyOpen() const;

  /// True when the event at \p Index opened.
  bool open(size_t Index) const;

  /// Reads the current value of every counter (unavailable events read
  /// as 0; check open()).
  PerfSnapshot read() const;

  /// Human-readable reason the first failed open gave (empty when all
  /// opened).
  const std::string &error() const { return Error; }

  /// Quick probe: can this process count *anything* on the PMU? Opens
  /// and immediately closes a trial counter — once; the verdict (and
  /// the refusal reason) is cached for the process lifetime, so callers
  /// that construct a set per request don't re-issue a failing syscall
  /// every time. False inside containers without perf access.
  static bool available(std::string *Reason = nullptr);

private:
  std::vector<PerfEvent> Events;
  std::vector<int> Fds; // -1 when the event failed to open
  std::string Error;
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_PERFCOUNTERS_H
