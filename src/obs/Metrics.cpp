//===- Metrics.cpp - histograms, gauges and Prometheus export -------------===//

#include "obs/Metrics.h"

#include "obs/Telemetry.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace ltp;
using namespace ltp::obs;

//===----------------------------------------------------------------------===//
// Runtime toggle
//===----------------------------------------------------------------------===//

namespace {

bool envMetricsEnabled() {
  const char *Env = std::getenv("LTP_METRICS"); // NOLINT(concurrency-mt-unsafe)
  return !Env || std::string(Env) != "0";
}

} // namespace

std::atomic<bool> ltp::obs::detail::MetricsEnabled{envMetricsEnabled()};

void ltp::obs::setMetricsEnabled(bool Enabled) {
  detail::MetricsEnabled.store(Enabled, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

/// Converts a millisecond observation to clamped nanoseconds.
uint64_t nanosFromMillis(double Millis) {
  if (!(Millis > 0.0))
    return 0;
  // Anything above ~2^63 ns (centuries) saturates the top bucket.
  if (Millis >= 9.0e12)
    return UINT64_MAX;
  return static_cast<uint64_t>(Millis * 1e6);
}

int floorLog2(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(V);
#else
  int E = 0;
  while (V >>= 1)
    ++E;
  return E;
#endif
}

} // namespace

size_t Histogram::bucketIndex(uint64_t Nanos) {
  if (Nanos < static_cast<uint64_t>(SubBuckets))
    return static_cast<size_t>(Nanos);
  int Exp = floorLog2(Nanos); // >= SubBits
  size_t Sub = (Nanos >> (Exp - SubBits)) & (SubBuckets - 1);
  return static_cast<size_t>(Exp - SubBits + 1) * SubBuckets + Sub;
}

double Histogram::bucketLowerMillis(size_t Index) {
  if (Index < static_cast<size_t>(SubBuckets))
    return static_cast<double>(Index) / 1e6;
  int Shift = static_cast<int>(Index / SubBuckets) - 1;
  double Base = static_cast<double>(SubBuckets + Index % SubBuckets);
  return std::ldexp(Base, Shift) / 1e6;
}

double Histogram::bucketUpperMillis(size_t Index) {
  if (Index < static_cast<size_t>(SubBuckets))
    return static_cast<double>(Index + 1) / 1e6;
  int Shift = static_cast<int>(Index / SubBuckets) - 1;
  double Base = static_cast<double>(SubBuckets + Index % SubBuckets + 1);
  return std::ldexp(Base, Shift) / 1e6;
}

void Histogram::observe(double Millis) {
  uint64_t Nanos = nanosFromMillis(Millis);
  Buckets[bucketIndex(Nanos)].fetch_add(1, std::memory_order_relaxed);
  SumNanos.fetch_add(Nanos, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  S.Counts.resize(NumBuckets);
  for (size_t I = 0; I != NumBuckets; ++I) {
    uint64_t N = Buckets[I].load(std::memory_order_relaxed);
    S.Counts[I] = N;
    S.Count += N;
  }
  S.SumMillis =
      static_cast<double>(SumNanos.load(std::memory_order_relaxed)) / 1e6;
  return S;
}

void Histogram::Snapshot::merge(const Snapshot &Other) {
  if (Counts.size() < Other.Counts.size())
    Counts.resize(Other.Counts.size());
  for (size_t I = 0; I != Other.Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  SumMillis += Other.SumMillis;
  Count += Other.Count;
}

double Histogram::Snapshot::quantile(double Q) const {
  if (Count == 0)
    return -1.0;
  Q = std::min(1.0, std::max(0.0, Q));
  double Rank = std::max(1.0, Q * static_cast<double>(Count));
  uint64_t Cumulative = 0;
  for (size_t I = 0; I != Counts.size(); ++I) {
    if (Counts[I] == 0)
      continue;
    uint64_t Previous = Cumulative;
    Cumulative += Counts[I];
    if (static_cast<double>(Cumulative) >= Rank) {
      double Lower = Histogram::bucketLowerMillis(I);
      double Upper = Histogram::bucketUpperMillis(I);
      double Frac =
          (Rank - static_cast<double>(Previous)) /
          static_cast<double>(Counts[I]);
      return Lower + (Upper - Lower) * Frac;
    }
  }
  return Histogram::bucketUpperMillis(Counts.size() - 1);
}

//===----------------------------------------------------------------------===//
// Registries
//===----------------------------------------------------------------------===//

namespace {

/// Never-destroyed registries (worker threads may record during process
/// teardown), matching the Counter registry in Telemetry.cpp.
template <typename T> struct NamedRegistry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<T>> Entries;

  T &get(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::unique_ptr<T> &Slot = Entries[Name];
    if (!Slot)
      Slot.reset(new T());
    return *Slot;
  }
};

NamedRegistry<Histogram> &histogramRegistry() {
  static NamedRegistry<Histogram> *Registry = new NamedRegistry<Histogram>();
  return *Registry;
}

NamedRegistry<Gauge> &gaugeRegistry() {
  static NamedRegistry<Gauge> *Registry = new NamedRegistry<Gauge>();
  return *Registry;
}

} // namespace

Histogram &ltp::obs::histogram(const std::string &Name) {
  return histogramRegistry().get(Name);
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
ltp::obs::histogramSnapshot() {
  NamedRegistry<Histogram> &Registry = histogramRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  std::vector<std::pair<std::string, Histogram::Snapshot>> Out;
  Out.reserve(Registry.Entries.size());
  for (const auto &[Name, H] : Registry.Entries)
    Out.emplace_back(Name, H->snapshot());
  return Out; // std::map iteration is already name-sorted
}

Gauge &ltp::obs::gauge(const std::string &Name) {
  return gaugeRegistry().get(Name);
}

std::vector<std::pair<std::string, int64_t>> ltp::obs::gaugeSnapshot() {
  NamedRegistry<Gauge> &Registry = gaugeRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  std::vector<std::pair<std::string, int64_t>> Out;
  Out.reserve(Registry.Entries.size());
  for (const auto &[Name, G] : Registry.Entries)
    Out.emplace_back(Name, G->value());
  return Out;
}

//===----------------------------------------------------------------------===//
// Prometheus export
//===----------------------------------------------------------------------===//

std::string ltp::obs::prometheusName(const std::string &Name) {
  std::string Out = "ltp_";
  Out.reserve(Name.size() + 4);
  for (char C : Name) {
    bool Alnum = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                 (C >= '0' && C <= '9');
    Out += Alnum ? C : '_';
  }
  return Out;
}

std::string ltp::obs::renderPrometheusText() {
  std::string Out;
  Out.reserve(4096);

  for (const auto &[Name, Value] : counterSnapshot()) {
    std::string PName = prometheusName(Name);
    Out += strFormat("# TYPE %s counter\n%s %lld\n", PName.c_str(),
                     PName.c_str(), static_cast<long long>(Value));
  }

  for (const auto &[Name, Value] : gaugeSnapshot()) {
    std::string PName = prometheusName(Name);
    Out += strFormat("# TYPE %s gauge\n%s %lld\n", PName.c_str(),
                     PName.c_str(), static_cast<long long>(Value));
  }

  for (const auto &[Name, Snap] : histogramSnapshot()) {
    std::string PName = prometheusName(Name);
    Out += strFormat("# TYPE %s histogram\n", PName.c_str());
    uint64_t Cumulative = 0;
    for (size_t I = 0; I != Snap.Counts.size(); ++I) {
      if (Snap.Counts[I] == 0)
        continue; // elide empty buckets; samples stay cumulative
      Cumulative += Snap.Counts[I];
      Out += strFormat("%s_bucket{le=\"%.9g\"} %llu\n", PName.c_str(),
                       Histogram::bucketUpperMillis(I),
                       static_cast<unsigned long long>(Cumulative));
    }
    Out += strFormat("%s_bucket{le=\"+Inf\"} %llu\n", PName.c_str(),
                     static_cast<unsigned long long>(Snap.Count));
    Out += strFormat("%s_sum %.9g\n%s_count %llu\n", PName.c_str(),
                     Snap.SumMillis, PName.c_str(),
                     static_cast<unsigned long long>(Snap.Count));
  }
  return Out;
}

bool ltp::obs::writeMetricsSnapshot(const std::string &Path,
                                    std::string *Error) {
  std::string Text = renderPrometheusText();
  std::string TmpPath = Path + ".tmp";
  std::FILE *Out = std::fopen(TmpPath.c_str(), "w");
  if (!Out) {
    if (Error)
      *Error = "cannot open metrics snapshot file for writing: " + TmpPath;
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
  Ok = std::fclose(Out) == 0 && Ok;
  if (Ok)
    Ok = std::rename(TmpPath.c_str(), Path.c_str()) == 0;
  if (!Ok && Error)
    *Error = "error writing metrics snapshot: " + Path;
  return Ok;
}

//===----------------------------------------------------------------------===//
// MetricsSnapshotter
//===----------------------------------------------------------------------===//

struct MetricsSnapshotter::Impl {
  std::string Path;
  double IntervalSeconds;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool StopRequested = false;
  std::thread Worker;
};

MetricsSnapshotter::MetricsSnapshotter(std::string Path,
                                       double IntervalSeconds)
    : State(new Impl()) {
  State->Path = std::move(Path);
  State->IntervalSeconds = std::max(0.1, IntervalSeconds);
  State->Worker = std::thread([this] {
    std::unique_lock<std::mutex> Lock(State->Mutex);
    while (!State->StopRequested) {
      auto Interval = std::chrono::duration<double>(State->IntervalSeconds);
      State->Cv.wait_for(Lock, Interval,
                         [this] { return State->StopRequested; });
      if (State->StopRequested)
        break;
      Lock.unlock();
      writeMetricsSnapshot(State->Path);
      Lock.lock();
    }
  });
}

void MetricsSnapshotter::stop() {
  {
    std::lock_guard<std::mutex> Lock(State->Mutex);
    if (State->StopRequested)
      return;
    State->StopRequested = true;
  }
  State->Cv.notify_all();
  if (State->Worker.joinable())
    State->Worker.join();
  writeMetricsSnapshot(State->Path); // final snapshot on shutdown
}

MetricsSnapshotter::~MetricsSnapshotter() {
  stop();
  delete State;
}
