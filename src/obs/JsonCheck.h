//===- JsonCheck.h - minimal JSON parser for trace validation ---*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small recursive-descent JSON parser used to *validate*
/// the telemetry layer's own output (trace files, BENCH_*.json results)
/// in tests and in the `ltp-trace-check` CI tool. It parses the full
/// JSON grammar into a tree of JsonValue nodes; it is not a
/// general-purpose JSON library (no streaming, no incremental parse) and
/// must never grow into one — production code only ever *writes* JSON.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_JSONCHECK_H
#define LTP_OBS_JSONCHECK_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ltp {
namespace obs {

/// One parsed JSON node.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue;
  std::vector<JsonValue> Elements;            // Kind::Array
  std::map<std::string, JsonValue> Members;   // Kind::Object

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(const std::string &Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Members.find(Name);
    return It == Members.end() ? nullptr : &It->second;
  }
};

/// Parses \p Text as one JSON document. Returns null and fills \p Error
/// (with offset context) on malformed input; trailing garbage is an
/// error.
std::unique_ptr<JsonValue> parseJson(const std::string &Text,
                                     std::string *Error);

/// Validates \p Path as a Chrome-trace-event file the telemetry layer
/// wrote: a top-level object with a `traceEvents` array whose complete
/// ("X") events each carry name/ph/ts/dur/pid/tid with sane types and
/// non-negative times. Fills \p Summary with a one-line description
/// (event counts) on success and \p Error on failure.
bool checkTraceFile(const std::string &Path, std::string *Summary,
                    std::string *Error);

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_JSONCHECK_H
