//===- JsonCheck.cpp - minimal JSON parser for trace validation ----------===//

#include "obs/JsonCheck.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace ltp;
using namespace ltp::obs;

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::unique_ptr<JsonValue> run() {
    auto Value = std::make_unique<JsonValue>();
    if (!parseValue(*Value))
      return nullptr;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing garbage after document");
      return nullptr;
    }
    return Value;
  }

private:
  void fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = strFormat("JSON error at offset %zu: %s", Pos,
                         Message.c_str());
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0) {
      fail(std::string("expected '") + Word + "'");
      return false;
    }
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Text[Pos] != '"') {
      fail("expected string");
      return false;
    }
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (C == '\\') {
        if (Pos + 1 >= Text.size()) {
          fail("unterminated escape");
          return false;
        }
        char E = Text[Pos + 1];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 5 >= Text.size()) {
            fail("truncated \\u escape");
            return false;
          }
          // Validate the four hex digits; decode as Latin-1 for the
          // control-character range this writer emits.
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos + 2 + I];
            if (!std::isxdigit(static_cast<unsigned char>(H))) {
              fail("bad \\u escape digit");
              return false;
            }
            Code = Code * 16 +
                   (std::isdigit(static_cast<unsigned char>(H))
                        ? static_cast<unsigned>(H - '0')
                        : static_cast<unsigned>(
                              std::tolower(H) - 'a' + 10));
          }
          Out += Code < 256 ? static_cast<char>(Code) : '?';
          Pos += 4;
          break;
        }
        default:
          fail("unknown escape");
          return false;
        }
        Pos += 2;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        fail("raw control character in string");
        return false;
      } else {
        Out += C;
        ++Pos;
      }
    }
    if (Pos >= Text.size()) {
      fail("unterminated string");
      return false;
    }
    ++Pos; // closing quote
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.StringValue);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.BoolValue = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      Out.BoolValue = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    }
    return parseNumber(Out);
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a value");
      return false;
    }
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    Out.NumberValue = std::strtod(Token.c_str(), &End);
    if (!End || *End != '\0') {
      Pos = Start;
      fail("malformed number");
      return false;
    }
    Out.K = JsonValue::Kind::Number;
    return true;
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Out.Elements.emplace_back();
      if (!parseValue(Out.Elements.back()))
        return false;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      if (Pos >= Text.size()) {
        fail("unterminated object");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        fail("expected ':' in object");
        return false;
      }
      ++Pos;
      if (!parseValue(Out.Members[Key]))
        return false;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::unique_ptr<JsonValue> ltp::obs::parseJson(const std::string &Text,
                                               std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}

bool ltp::obs::checkTraceFile(const std::string &Path, std::string *Summary,
                              std::string *Error) {
  std::ifstream In(Path);
  if (!In.good()) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  std::unique_ptr<JsonValue> Root = parseJson(Text, Error);
  if (!Root)
    return false;
  if (!Root->isObject()) {
    if (Error)
      *Error = "top level is not an object";
    return false;
  }
  const JsonValue *Events = Root->find("traceEvents");
  if (!Events || !Events->isArray()) {
    if (Error)
      *Error = "missing traceEvents array";
    return false;
  }

  size_t SpanCount = 0, CounterCount = 0, MetaCount = 0;
  for (size_t I = 0; I != Events->Elements.size(); ++I) {
    const JsonValue &E = Events->Elements[I];
    auto Bad = [&](const char *What) {
      if (Error)
        *Error = strFormat("event %zu: %s", I, What);
      return false;
    };
    if (!E.isObject())
      return Bad("not an object");
    const JsonValue *Name = E.find("name");
    const JsonValue *Ph = E.find("ph");
    if (!Name || !Name->isString() || Name->StringValue.empty())
      return Bad("missing or empty name");
    if (!Ph || !Ph->isString())
      return Bad("missing ph");
    const std::string &Phase = Ph->StringValue;
    if (Phase == "X") {
      ++SpanCount;
      const JsonValue *Ts = E.find("ts");
      const JsonValue *Dur = E.find("dur");
      const JsonValue *Pid = E.find("pid");
      const JsonValue *Tid = E.find("tid");
      if (!Ts || !Ts->isNumber() || Ts->NumberValue < 0.0)
        return Bad("complete event without a non-negative ts");
      if (!Dur || !Dur->isNumber() || Dur->NumberValue < 0.0)
        return Bad("complete event without a non-negative dur");
      if (!Pid || !Pid->isNumber() || !Tid || !Tid->isNumber())
        return Bad("complete event without pid/tid");
    } else if (Phase == "C") {
      ++CounterCount;
      const JsonValue *Args = E.find("args");
      if (!Args || !Args->isObject())
        return Bad("counter event without args");
    } else if (Phase == "M") {
      ++MetaCount;
    } else {
      return Bad("unexpected phase (writer only emits X/C/M)");
    }
  }
  if (SpanCount == 0) {
    if (Error)
      *Error = "trace contains no span (\"X\") events";
    return false;
  }
  if (Summary)
    *Summary = strFormat("%zu span, %zu counter, %zu metadata events",
                         SpanCount, CounterCount, MetaCount);
  return true;
}
