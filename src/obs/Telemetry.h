//===- Telemetry.h - spans, counters and trace export -----------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation core of the unified telemetry layer:
///
///  * RAII *scoped spans* recording wall-clock intervals into per-thread
///    buffers, exported as a Chrome-trace-event JSON file that Perfetto
///    and chrome://tracing load directly (`writeTrace`);
///  * a process-wide *counter registry* of named monotonic counters
///    (always on — one relaxed fetch_add per bump) that every bench
///    prints as a single consistent telemetry footer.
///
/// Tracing is off by default. It is enabled programmatically
/// (`setTracingEnabled`) — the `--trace-json=FILE` flag of ltp-opt and of
/// the bench harness does this — or by setting `LTP_TRACE=1` in the
/// environment. When disabled, a span costs one relaxed atomic load and
/// performs no allocation; compiling with `-DLTP_OBS_DISABLED` removes
/// even that. Tracing never feeds back into optimization decisions, so
/// enabling it cannot perturb schedules (DeterminismTest pins this).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_TELEMETRY_H
#define LTP_OBS_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ltp {
namespace obs {

//===----------------------------------------------------------------------===//
// Runtime toggle
//===----------------------------------------------------------------------===//

namespace detail {
/// The master switch. Initialized once from LTP_TRACE; flipped by
/// setTracingEnabled.
extern std::atomic<bool> TracingEnabled;
} // namespace detail

/// True when span recording is active.
inline bool tracingEnabled() {
#ifdef LTP_OBS_DISABLED
  return false;
#else
  return detail::TracingEnabled.load(std::memory_order_relaxed);
#endif
}

/// Turns span recording on or off (on also honours LTP_TRACE=1 at
/// process start, checked during static initialization).
void setTracingEnabled(bool Enabled);

//===----------------------------------------------------------------------===//
// Counter registry
//===----------------------------------------------------------------------===//

/// One named monotonic counter. Handles returned by counter() are stable
/// for the process lifetime; cache them in a function-local static when
/// bumping from a hot path.
class Counter {
public:
  void add(int64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  /// Gauge-style overwrite (e.g. "last run's access count").
  void set(int64_t N) { Value.store(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend Counter &counter(const std::string &Name);
  Counter() = default;
  std::atomic<int64_t> Value{0};
};

/// Finds or creates the counter named \p Name. Thread-safe; the returned
/// reference stays valid forever (resetCounters zeroes values, it never
/// removes entries).
Counter &counter(const std::string &Name);

/// All counters with non-default values need not be filtered here: the
/// snapshot returns every registered counter, sorted by name.
std::vector<std::pair<std::string, int64_t>> counterSnapshot();

/// Zeroes every registered counter (tests).
void resetCounters();

//===----------------------------------------------------------------------===//
// Scoped spans
//===----------------------------------------------------------------------===//

/// RAII span: records [construction, destruction) on the calling thread.
/// \p Name must be a string literal (stored by pointer). Inactive spans
/// (tracing disabled at construction) cost nothing on destruction.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) : Name(Name) {
    if (tracingEnabled())
      StartNs = nowNs();
  }

  /// Deferred-args form: \p ArgsFn is only invoked (and its string only
  /// allocated) when tracing is enabled.
  template <typename ArgsFnT>
  ScopedSpan(const char *Name, ArgsFnT &&ArgsFn) : Name(Name) {
    if (tracingEnabled()) {
      StartNs = nowNs();
      Args = std::forward<ArgsFnT>(ArgsFn)();
    }
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// True when this span is recording (callers use this to skip building
  /// detail strings for setArgs).
  bool active() const { return StartNs >= 0; }

  /// Replaces the span's detail string; useful when the interesting
  /// detail (iteration counts, cache-hit outcome) is only known at the
  /// end of the scope.
  void setArgs(std::string NewArgs) {
    if (active())
      Args = std::move(NewArgs);
  }

  ~ScopedSpan() {
    if (StartNs >= 0)
      record();
  }

  /// Nanoseconds since the process-wide trace epoch.
  static int64_t nowNs();

private:
  void record();

  const char *Name;
  std::string Args;
  int64_t StartNs = -1;
};

//===----------------------------------------------------------------------===//
// Trace export
//===----------------------------------------------------------------------===//

/// Writes every recorded span (all threads) plus one terminal sample per
/// registered counter as Chrome trace events:
/// `{"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...}]}`.
/// Timestamps are microseconds from the trace epoch. Returns false and
/// fills \p Error on I/O failure.
bool writeTrace(const std::string &Path, std::string *Error = nullptr);

/// Number of span events currently buffered across all threads.
size_t traceEventCount();

/// Discards all buffered span events (tests).
void clearTrace();

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_TELEMETRY_H
