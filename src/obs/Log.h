//===- Log.h - leveled structured-JSON logging ------------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A leveled structured logger for long-running processes (ltp-serve
/// foremost): every emitted line is one self-contained JSON object
///
///   {"ts_ms":1733829000123,"level":"info","component":"serve",
///    "msg":"request","request_id":"r-1234-7",...}
///
/// so deployments can ship the stream straight into a log pipeline and
/// join lines against spans and flight-recorder digests by request ID.
///
/// Logging is off by default. It is enabled by `LTP_LOG=<level>` in the
/// environment (debug|info|warn|error) or programmatically
/// (`setLogLevel`) — ltp-serve's `--log-json` flag does the latter.
/// Output goes to stderr unless redirected with `setLogFile`. When a
/// level is disabled, `logEnabled` is one relaxed atomic load and no
/// field strings are built; compiling with `-DLTP_OBS_DISABLED` removes
/// even that.
///
/// The thread-local *current request ID* set by RequestIdScope is
/// stamped onto every log line, every span recorded in the scope
/// (Telemetry) and every provenance decision record, making all three
/// joinable.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_LOG_H
#define LTP_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ltp {
namespace obs {

//===----------------------------------------------------------------------===//
// Shared JSON escaping
//===----------------------------------------------------------------------===//

/// Escapes \p S for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the logger, the trace
/// writer and the serve protocol so every producer escapes identically.
std::string jsonEscape(const std::string &S);

//===----------------------------------------------------------------------===//
// Levels
//===----------------------------------------------------------------------===//

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Off = 4,
};

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns Off for anything
/// unrecognized.
LogLevel parseLogLevel(const std::string &Text);

/// Short lowercase name ("info").
const char *logLevelName(LogLevel L);

namespace detail {
extern std::atomic<int> LogThreshold;
} // namespace detail

/// True when a message at level \p L would be emitted.
inline bool logEnabled(LogLevel L) {
#ifdef LTP_OBS_DISABLED
  (void)L;
  return false;
#else
  return static_cast<int>(L) >=
         detail::LogThreshold.load(std::memory_order_relaxed);
#endif
}

/// Current threshold level.
LogLevel logLevel();

/// Sets the threshold (messages at or above \p L are emitted). LTP_LOG
/// in the environment seeds the initial value; Off disables logging.
void setLogLevel(LogLevel L);

/// Redirects log output to \p Path (append mode). An empty path returns
/// to stderr. Returns false and leaves the sink unchanged when the file
/// cannot be opened.
bool setLogFile(const std::string &Path, std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// Structured fields
//===----------------------------------------------------------------------===//

/// One key/value field of a log line. Values are strings, numbers,
/// booleans, or pre-rendered raw JSON (for nested objects/arrays).
struct LogField {
  enum class Kind { String, Number, Integer, Bool, Raw };

  LogField(std::string Key, const char *Value)
      : Key(std::move(Key)), K(Kind::String), Str(Value) {}
  LogField(std::string Key, std::string Value)
      : Key(std::move(Key)), K(Kind::String), Str(std::move(Value)) {}
  LogField(std::string Key, double Value)
      : Key(std::move(Key)), K(Kind::Number), Num(Value) {}
  LogField(std::string Key, int64_t Value)
      : Key(std::move(Key)), K(Kind::Integer), Int(Value) {}
  LogField(std::string Key, int Value)
      : Key(std::move(Key)), K(Kind::Integer), Int(Value) {}
  LogField(std::string Key, bool Value)
      : Key(std::move(Key)), K(Kind::Bool), BoolValue(Value) {}

  /// Raw-JSON factory: \p Json must already be valid JSON (an object,
  /// array or literal); it is spliced in verbatim.
  static LogField raw(std::string Key, std::string Json);

  std::string Key;
  Kind K;
  std::string Str;
  double Num = 0.0;
  int64_t Int = 0;
  bool BoolValue = false;
};

/// Emits one JSON log line at \p L. No-op (and no field evaluation at
/// call sites that guard with logEnabled) when \p L is below the
/// threshold. \p Component names the subsystem ("serve", "jit", ...).
/// The thread-local current request ID, when set, is added as
/// "request_id" automatically.
void logEvent(LogLevel L, const std::string &Component,
              const std::string &Msg,
              const std::vector<LogField> &Fields = {});

//===----------------------------------------------------------------------===//
// Request-ID propagation
//===----------------------------------------------------------------------===//

/// The request ID bound to the calling thread ("" when outside any
/// request scope).
const std::string &currentRequestId();

/// Binds \p Rid to the calling thread (internal; prefer RequestIdScope).
void setCurrentRequestId(std::string Rid);

/// RAII: binds a request ID to the calling thread for the scope's
/// lifetime, restoring the previous binding on exit. Everything recorded
/// on this thread inside the scope — log lines, spans, provenance
/// records — carries the ID.
class RequestIdScope {
public:
  explicit RequestIdScope(std::string Rid);
  RequestIdScope(const RequestIdScope &) = delete;
  RequestIdScope &operator=(const RequestIdScope &) = delete;
  ~RequestIdScope();

private:
  std::string Saved;
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_LOG_H
