//===- Provenance.cpp - optimizer decision-provenance log -----------------===//

#include "obs/Provenance.h"

#include "obs/Log.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

using namespace ltp;
using namespace ltp::obs;

namespace {

std::atomic<bool> ExplainEnabled{false};

struct DecisionLogState {
  std::mutex Mutex;
  std::vector<DecisionRecord> Published;
};

DecisionLogState &logState() {
  static DecisionLogState *State = new DecisionLogState();
  return *State;
}

/// The decision currently being built on this thread (null when none).
thread_local std::unique_ptr<DecisionRecord> CurrentDecision;

} // namespace

bool ltp::obs::explainEnabled() {
  return ExplainEnabled.load(std::memory_order_relaxed);
}

void ltp::obs::setExplainEnabled(bool Enabled) {
  ExplainEnabled.store(Enabled, std::memory_order_relaxed);
}

void ltp::obs::beginDecision(const std::string &Stage,
                             const std::string &Classification) {
  if (!explainEnabled())
    return;
  CurrentDecision = std::make_unique<DecisionRecord>();
  CurrentDecision->Stage = Stage;
  CurrentDecision->Classification = Classification;
  CurrentDecision->RequestId = currentRequestId();
}

void ltp::obs::recordCandidate(CandidateRecord Record) {
  if (!explainEnabled() || !CurrentDecision)
    return;
  CurrentDecision->Candidates.push_back(std::move(Record));
}

void ltp::obs::endDecision(const std::string &Chosen) {
  if (!CurrentDecision)
    return;
  CurrentDecision->Chosen = Chosen;
  DecisionLogState &State = logState();
  std::lock_guard<std::mutex> Lock(State.Mutex);
  State.Published.push_back(std::move(*CurrentDecision));
  CurrentDecision.reset();
}

std::vector<DecisionRecord> ltp::obs::takeDecisions() {
  DecisionLogState &State = logState();
  std::lock_guard<std::mutex> Lock(State.Mutex);
  std::vector<DecisionRecord> Out = std::move(State.Published);
  State.Published.clear();
  return Out;
}
