//===- FlightRecorder.h - ring buffer of recent request digests -*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on flight recorder for ltp-serve: a fixed-size ring of
/// digests of the most recent requests (request ID, key hash, dedup
/// outcome, per-stage timings, `.so` path, error), cheap enough to
/// record unconditionally — one small struct copy under a short mutex —
/// and dumped on demand via the `dump` serve op or SIGUSR2. When a
/// request stalls or fails in production, the recorder answers "what was
/// the daemon doing right before?" without any tracing having been
/// enabled in advance. Unlike spans and metrics, the recorder stays
/// active under -DLTP_OBS_DISABLED: it is part of the serving protocol's
/// debuggability contract, not optional instrumentation.
///
/// The slow-request threshold lives here too: requests whose total
/// latency exceeds it get their full stage breakdown logged at warn
/// level the moment they finish (see OptimizerService).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_FLIGHTRECORDER_H
#define LTP_OBS_FLIGHTRECORDER_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ltp {
namespace obs {

/// What the recorder keeps per request. All timings are milliseconds.
struct RequestDigest {
  std::string RequestId;
  std::string Op;
  std::string Kernel;
  std::string KeyHash;
  std::string Dedup;  ///< "miss" / "hit_inflight" / "cached" / ""
  std::string Error;  ///< empty on success
  std::string SoPath; ///< first compiled artifact, when any
  bool Ok = false;
  double TotalMillis = 0.0;
  double OptMillis = 0.0;
  double CompileMillis = 0.0;
  int64_t UnixMillis = 0; ///< wall-clock completion time
  /// Stage-name/duration pairs, in execution order. Only the dedup
  /// *owner* carries stage timings; duplicates served from the table
  /// record an empty list (they did not run the stages).
  std::vector<std::pair<std::string, double>> StageMillis;
};

/// Renders one digest as a JSON object.
std::string digestJson(const RequestDigest &D);

/// Fixed-capacity ring of the most recent digests. Thread-safe.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 256);

  /// Appends \p D, evicting the oldest digest once full.
  void record(RequestDigest D);

  /// The buffered digests, oldest first.
  std::vector<RequestDigest> snapshot() const;

  size_t capacity() const { return Cap; }

  /// Total records ever made (snapshot().size() caps at capacity; this
  /// does not), so a dump shows how much history was evicted.
  uint64_t totalRecorded() const;

  /// The buffered digests as a JSON array, oldest first.
  std::string requestsJsonArray() const;

  /// Complete dump object:
  /// {"flight_recorder":[...],"capacity":N,"recorded":M}.
  std::string dumpJson() const;

private:
  const size_t Cap;
  mutable std::mutex Mutex;
  std::vector<RequestDigest> Ring; ///< size ≤ Cap; Next indexes the ring
  size_t Next = 0;
  uint64_t Recorded = 0;
};

/// The process-wide recorder used by the serve stack.
FlightRecorder &flightRecorder();

/// Requests slower than this (milliseconds) get their stage breakdown
/// logged at warn level. 0 disables. Default 1000 ms; ltp-serve's
/// --slow-ms flag overrides.
double slowRequestThresholdMs();
void setSlowRequestThresholdMs(double Millis);

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_FLIGHTRECORDER_H
