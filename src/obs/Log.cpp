//===- Log.cpp - leveled structured-JSON logging --------------------------===//

#include "obs/Log.h"

#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace ltp;
using namespace ltp::obs;

//===----------------------------------------------------------------------===//
// Shared JSON escaping
//===----------------------------------------------------------------------===//

std::string ltp::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Levels and sink
//===----------------------------------------------------------------------===//

namespace {

int envLogThreshold() {
  const char *Env = std::getenv("LTP_LOG"); // NOLINT(concurrency-mt-unsafe)
  if (!Env || !*Env)
    return static_cast<int>(LogLevel::Off);
  return static_cast<int>(parseLogLevel(Env));
}

/// The log sink: stderr by default, a file after setLogFile. Guarded by
/// sinkMutex; never destroyed so worker threads may log during process
/// teardown.
struct LogSink {
  std::mutex Mutex;
  std::FILE *Out = stderr;
};

LogSink &logSink() {
  static LogSink *Sink = new LogSink();
  return *Sink;
}

} // namespace

std::atomic<int> ltp::obs::detail::LogThreshold{envLogThreshold()};

LogLevel ltp::obs::parseLogLevel(const std::string &Text) {
  if (Text == "debug" || Text == "DEBUG")
    return LogLevel::Debug;
  if (Text == "info" || Text == "INFO" || Text == "1")
    return LogLevel::Info;
  if (Text == "warn" || Text == "warning" || Text == "WARN")
    return LogLevel::Warn;
  if (Text == "error" || Text == "ERROR")
    return LogLevel::Error;
  return LogLevel::Off;
}

const char *ltp::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "off";
}

LogLevel ltp::obs::logLevel() {
  return static_cast<LogLevel>(
      detail::LogThreshold.load(std::memory_order_relaxed));
}

void ltp::obs::setLogLevel(LogLevel L) {
  detail::LogThreshold.store(static_cast<int>(L), std::memory_order_relaxed);
}

bool ltp::obs::setLogFile(const std::string &Path, std::string *Error) {
  LogSink &Sink = logSink();
  if (Path.empty()) {
    std::lock_guard<std::mutex> Lock(Sink.Mutex);
    if (Sink.Out != stderr)
      std::fclose(Sink.Out);
    Sink.Out = stderr;
    return true;
  }
  std::FILE *File = std::fopen(Path.c_str(), "a");
  if (!File) {
    if (Error)
      *Error = "cannot open log file for appending: " + Path;
    return false;
  }
  std::lock_guard<std::mutex> Lock(Sink.Mutex);
  if (Sink.Out != stderr)
    std::fclose(Sink.Out);
  Sink.Out = File;
  return true;
}

//===----------------------------------------------------------------------===//
// Emission
//===----------------------------------------------------------------------===//

LogField LogField::raw(std::string Key, std::string Json) {
  LogField F(std::move(Key), std::string());
  F.K = Kind::Raw;
  F.Str = std::move(Json);
  return F;
}

namespace {

void appendField(std::string &Line, const LogField &F) {
  Line += ",\"";
  Line += jsonEscape(F.Key);
  Line += "\":";
  switch (F.K) {
  case LogField::Kind::String:
    Line += '"';
    Line += jsonEscape(F.Str);
    Line += '"';
    break;
  case LogField::Kind::Number:
    Line += strFormat("%.6g", F.Num);
    break;
  case LogField::Kind::Integer:
    Line += strFormat("%lld", static_cast<long long>(F.Int));
    break;
  case LogField::Kind::Bool:
    Line += F.BoolValue ? "true" : "false";
    break;
  case LogField::Kind::Raw:
    Line += F.Str;
    break;
  }
}

} // namespace

void ltp::obs::logEvent(LogLevel L, const std::string &Component,
                        const std::string &Msg,
                        const std::vector<LogField> &Fields) {
  if (!logEnabled(L) || L == LogLevel::Off)
    return;
  int64_t UnixMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  std::string Line;
  Line.reserve(128);
  Line += strFormat("{\"ts_ms\":%lld,\"level\":\"%s\",\"component\":\"%s\","
                    "\"msg\":\"%s\"",
                    static_cast<long long>(UnixMs), logLevelName(L),
                    jsonEscape(Component).c_str(), jsonEscape(Msg).c_str());
  const std::string &Rid = currentRequestId();
  if (!Rid.empty()) {
    Line += ",\"request_id\":\"";
    Line += jsonEscape(Rid);
    Line += '"';
  }
  for (const LogField &F : Fields)
    appendField(Line, F);
  Line += "}\n";

  LogSink &Sink = logSink();
  std::lock_guard<std::mutex> Lock(Sink.Mutex);
  std::fputs(Line.c_str(), Sink.Out);
  std::fflush(Sink.Out);
}

//===----------------------------------------------------------------------===//
// Request-ID propagation
//===----------------------------------------------------------------------===//

namespace {

std::string &threadRequestId() {
  thread_local std::string Rid;
  return Rid;
}

} // namespace

const std::string &ltp::obs::currentRequestId() { return threadRequestId(); }

void ltp::obs::setCurrentRequestId(std::string Rid) {
  threadRequestId() = std::move(Rid);
}

RequestIdScope::RequestIdScope(std::string Rid)
    : Saved(std::move(threadRequestId())) {
  threadRequestId() = std::move(Rid);
}

RequestIdScope::~RequestIdScope() { threadRequestId() = std::move(Saved); }
