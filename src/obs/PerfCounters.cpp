//===- PerfCounters.cpp - Linux perf_event hardware counters --------------===//

#include "obs/PerfCounters.h"

#include <cerrno>
#include <cstring>
#include <mutex>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace ltp;
using namespace ltp::obs;

const char *ltp::obs::perfEventName(PerfEvent E) {
  switch (E) {
  case PerfEvent::L1DReadAccess:
    return "L1D-read-access";
  case PerfEvent::L1DReadMiss:
    return "L1D-read-miss";
  case PerfEvent::LLCReadAccess:
    return "LLC-read-access";
  case PerfEvent::LLCReadMiss:
    return "LLC-read-miss";
  }
  return "";
}

#ifdef __linux__

namespace {

uint64_t cacheConfig(PerfEvent E) {
  auto Config = [](uint64_t CacheId, uint64_t Result) {
    return CacheId | (PERF_COUNT_HW_CACHE_OP_READ << 8) | (Result << 16);
  };
  switch (E) {
  case PerfEvent::L1DReadAccess:
    return Config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_RESULT_ACCESS);
  case PerfEvent::L1DReadMiss:
    return Config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_RESULT_MISS);
  case PerfEvent::LLCReadAccess:
    return Config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_RESULT_ACCESS);
  case PerfEvent::LLCReadMiss:
    return Config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_RESULT_MISS);
  }
  return 0;
}

int openEvent(PerfEvent E, std::string *Error) {
  struct perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.size = sizeof(Attr);
  Attr.type = PERF_TYPE_HW_CACHE;
  Attr.config = cacheConfig(E);
  Attr.disabled = 0;
  Attr.inherit = 1; // count pool threads spawned after the open
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  int Fd = static_cast<int>(::syscall(SYS_perf_event_open, &Attr,
                                      /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/-1, /*flags=*/0UL));
  if (Fd < 0 && Error && Error->empty())
    *Error = std::string(perfEventName(E)) + ": " + std::strerror(errno);
  return Fd;
}

} // namespace

PerfCounterSet::PerfCounterSet(const std::vector<PerfEvent> &Events)
    : Events(Events) {
  // Known-refused hosts (containers, perf_event_paranoid): skip the
  // per-event syscalls entirely instead of collecting EACCES once per
  // request.
  if (!available(&Error)) {
    Fds.assign(Events.size(), -1);
    return;
  }
  Fds.reserve(Events.size());
  for (PerfEvent E : Events)
    Fds.push_back(openEvent(E, &Error));
}

PerfCounterSet::~PerfCounterSet() {
  for (int Fd : Fds)
    if (Fd >= 0)
      ::close(Fd);
}

bool PerfCounterSet::anyOpen() const {
  for (int Fd : Fds)
    if (Fd >= 0)
      return true;
  return false;
}

bool PerfCounterSet::open(size_t Index) const {
  return Index < Fds.size() && Fds[Index] >= 0;
}

PerfSnapshot PerfCounterSet::read() const {
  PerfSnapshot Snapshot;
  Snapshot.Values.reserve(Fds.size());
  for (int Fd : Fds) {
    uint64_t Value = 0;
    if (Fd >= 0) {
      // A counting (non-sampling) read returns the parent's count plus
      // every inherited child's, i.e. the whole thread pool.
      if (::read(Fd, &Value, sizeof(Value)) != sizeof(Value))
        Value = 0;
    }
    Snapshot.Values.push_back(Value);
  }
  return Snapshot;
}

namespace {

/// Cached result of the one-time availability probe. perf access does
/// not change while the process runs (paranoid level and seccomp policy
/// are fixed at exec), so repeated failures — e.g. one PerfCounterSet
/// per served request inside a container — must not re-issue the
/// syscall every time.
struct ProbeCache {
  std::once_flag Once;
  bool Available = false;
  std::string Reason;
};

ProbeCache &probeCache() {
  static ProbeCache *Cache = new ProbeCache();
  return *Cache;
}

} // namespace

bool PerfCounterSet::available(std::string *Reason) {
  ProbeCache &Cache = probeCache();
  std::call_once(Cache.Once, [&Cache] {
    std::string Error;
    int Fd = openEvent(PerfEvent::L1DReadAccess, &Error);
    if (Fd < 0) {
      Cache.Reason = Error;
      return;
    }
    ::close(Fd);
    Cache.Available = true;
  });
  if (!Cache.Available && Reason)
    *Reason = Cache.Reason;
  return Cache.Available;
}

#else // !__linux__

PerfCounterSet::PerfCounterSet(const std::vector<PerfEvent> &Events)
    : Events(Events), Fds(Events.size(), -1),
      Error("perf_event_open is Linux-only") {}

PerfCounterSet::~PerfCounterSet() = default;

bool PerfCounterSet::anyOpen() const { return false; }

bool PerfCounterSet::open(size_t) const { return false; }

PerfSnapshot PerfCounterSet::read() const {
  PerfSnapshot Snapshot;
  Snapshot.Values.assign(Fds.size(), 0);
  return Snapshot;
}

bool PerfCounterSet::available(std::string *Reason) {
  if (Reason)
    *Reason = "perf_event_open is Linux-only";
  return false;
}

#endif
