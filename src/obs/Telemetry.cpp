//===- Telemetry.cpp - spans, counters and trace export -------------------===//

#include "obs/Telemetry.h"

#include "obs/Log.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

using namespace ltp;
using namespace ltp::obs;

//===----------------------------------------------------------------------===//
// Runtime toggle
//===----------------------------------------------------------------------===//

namespace {

bool envTraceRequested() {
  const char *Env = std::getenv("LTP_TRACE"); // NOLINT(concurrency-mt-unsafe)
  return Env && std::string(Env) != "0" && std::string(Env) != "";
}

} // namespace

std::atomic<bool> ltp::obs::detail::TracingEnabled{envTraceRequested()};

void ltp::obs::setTracingEnabled(bool Enabled) {
  detail::TracingEnabled.store(Enabled, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Clock
//===----------------------------------------------------------------------===//

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point traceEpoch() {
  static const SteadyClock::time_point Epoch = SteadyClock::now();
  return Epoch;
}

/// Forces the epoch to be taken during static initialization so the
/// first span does not pay for it (and timestamps are process-relative).
[[maybe_unused]] const SteadyClock::time_point EpochAnchor = traceEpoch();

} // namespace

int64_t ScopedSpan::nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - traceEpoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Span buffers
//===----------------------------------------------------------------------===//

namespace {

struct SpanEvent {
  const char *Name;
  std::string Args;
  std::string Rid; ///< request ID bound to the thread when recorded
  int64_t StartNs;
  int64_t DurNs;
};

/// Per-thread event buffer. Only the owning thread appends; writeTrace
/// and clearTrace read/clear from arbitrary threads, so every access is
/// under the buffer's own mutex (the critical sections are tiny and the
/// lock is uncontended in steady state).
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t Tid) : Tid(Tid) {}
  uint32_t Tid;
  std::mutex Mutex;
  std::vector<SpanEvent> Events;
};

struct BufferRegistry {
  std::mutex Mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  uint32_t NextTid = 1;
};

BufferRegistry &bufferRegistry() {
  static BufferRegistry *Registry = new BufferRegistry(); // never destroyed:
  // worker threads may record spans during process teardown.
  return *Registry;
}

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer *Buffer = [] {
    BufferRegistry &Registry = bufferRegistry();
    std::lock_guard<std::mutex> Lock(Registry.Mutex);
    Registry.Buffers.push_back(
        std::make_unique<ThreadBuffer>(Registry.NextTid++));
    return Registry.Buffers.back().get();
  }();
  return *Buffer;
}

} // namespace

void ScopedSpan::record() {
  int64_t EndNs = nowNs();
  ThreadBuffer &Buffer = threadBuffer();
  std::lock_guard<std::mutex> Lock(Buffer.Mutex);
  Buffer.Events.push_back(SpanEvent{Name, std::move(Args),
                                    currentRequestId(), StartNs,
                                    EndNs - StartNs});
}

size_t ltp::obs::traceEventCount() {
  BufferRegistry &Registry = bufferRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  size_t Count = 0;
  for (const auto &Buffer : Registry.Buffers) {
    std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
    Count += Buffer->Events.size();
  }
  return Count;
}

void ltp::obs::clearTrace() {
  BufferRegistry &Registry = bufferRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  for (const auto &Buffer : Registry.Buffers) {
    std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
    Buffer->Events.clear();
  }
}

//===----------------------------------------------------------------------===//
// Counter registry
//===----------------------------------------------------------------------===//

namespace {

struct CounterRegistry {
  std::mutex Mutex;
  /// unique_ptr entries keep Counter addresses stable across rehashing.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
};

CounterRegistry &counterRegistry() {
  static CounterRegistry *Registry = new CounterRegistry();
  return *Registry;
}

} // namespace

Counter &ltp::obs::counter(const std::string &Name) {
  CounterRegistry &Registry = counterRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  std::unique_ptr<Counter> &Slot = Registry.Counters[Name];
  if (!Slot)
    Slot.reset(new Counter());
  return *Slot;
}

std::vector<std::pair<std::string, int64_t>> ltp::obs::counterSnapshot() {
  CounterRegistry &Registry = counterRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  std::vector<std::pair<std::string, int64_t>> Out;
  Out.reserve(Registry.Counters.size());
  for (const auto &[Name, C] : Registry.Counters)
    Out.emplace_back(Name, C->value());
  return Out; // std::map iteration is already name-sorted
}

void ltp::obs::resetCounters() {
  CounterRegistry &Registry = counterRegistry();
  std::lock_guard<std::mutex> Lock(Registry.Mutex);
  for (auto &[Name, C] : Registry.Counters)
    C->set(0);
}

//===----------------------------------------------------------------------===//
// Trace export
//===----------------------------------------------------------------------===//

bool ltp::obs::writeTrace(const std::string &Path, std::string *Error) {
  // Snapshot all buffers (brief per-buffer locks), then format outside
  // any lock.
  struct Snapshot {
    uint32_t Tid;
    std::vector<SpanEvent> Events;
  };
  std::vector<Snapshot> Snapshots;
  {
    BufferRegistry &Registry = bufferRegistry();
    std::lock_guard<std::mutex> Lock(Registry.Mutex);
    for (const auto &Buffer : Registry.Buffers) {
      std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
      Snapshots.push_back(Snapshot{Buffer->Tid, Buffer->Events});
    }
  }

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    if (Error)
      *Error = "cannot open trace file for writing: " + Path;
    return false;
  }

  std::fputs("{\"traceEvents\":[\n", Out);
  bool First = true;
  auto Comma = [&] {
    if (!First)
      std::fputs(",\n", Out);
    First = false;
  };

  // Thread-name metadata so Perfetto labels the tracks.
  for (const Snapshot &S : Snapshots) {
    Comma();
    std::fprintf(Out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 S.Tid,
                 S.Tid == 1 ? "main" : strFormat("worker-%u", S.Tid).c_str());
  }

  int64_t MaxEndNs = 0;
  for (const Snapshot &S : Snapshots) {
    for (const SpanEvent &E : S.Events) {
      MaxEndNs = std::max(MaxEndNs, E.StartNs + E.DurNs);
      Comma();
      std::fprintf(Out,
                   "{\"name\":\"%s\",\"cat\":\"ltp\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                   jsonEscape(E.Name).c_str(),
                   static_cast<double>(E.StartNs) / 1e3,
                   static_cast<double>(E.DurNs) / 1e3, S.Tid);
      if (!E.Args.empty() || !E.Rid.empty()) {
        std::fputs(",\"args\":{", Out);
        if (!E.Args.empty())
          std::fprintf(Out, "\"detail\":\"%s\"", jsonEscape(E.Args).c_str());
        if (!E.Rid.empty())
          std::fprintf(Out, "%s\"rid\":\"%s\"", E.Args.empty() ? "" : ",",
                       jsonEscape(E.Rid).c_str());
        std::fputs("}", Out);
      }
      std::fputs("}", Out);
    }
  }

  // One terminal sample per counter, as Chrome counter events.
  for (const auto &[Name, Value] : counterSnapshot()) {
    Comma();
    std::fprintf(Out,
                 "{\"name\":\"%s\",\"cat\":\"ltp\",\"ph\":\"C\","
                 "\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%lld}}",
                 jsonEscape(Name).c_str(),
                 static_cast<double>(MaxEndNs) / 1e3,
                 static_cast<long long>(Value));
  }

  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", Out);
  bool Ok = std::fclose(Out) == 0;
  if (!Ok && Error)
    *Error = "error writing trace file: " + Path;
  return Ok;
}
