//===- Provenance.h - optimizer decision-provenance log ---------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records *why* the optimizer chose a schedule: every candidate the
/// temporal/spatial search considered, with its predicted L1/L2 misses,
/// cost-model score and accept/prune reason, grouped under the stage's
/// classifier verdict. `ltp-opt --explain` turns the log on and prints
/// it, making the Table-4/Figure-4 schedule choices auditable.
///
/// The log is disabled by default; when disabled, instrumentation sites
/// pay one relaxed atomic load and build no strings. Recording never
/// feeds back into the search, so enabling it cannot change the chosen
/// schedule (DeterminismTest pins this).
///
/// Decisions are accumulated per thread (an optimize() call runs on one
/// thread) and published to a global list when the decision ends, so
/// concurrent optimizer calls cannot interleave their candidate lists.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_PROVENANCE_H
#define LTP_OBS_PROVENANCE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ltp {
namespace obs {

/// One candidate schedule the search evaluated (or pruned).
struct CandidateRecord {
  /// Rendered candidate: tile assignment plus reuse pivots, e.g.
  /// "tiles{i=32,j=512,k=64} u=i v=k".
  std::string Candidate;
  /// Predicted misses from the analytical model (Eqs. 5 and 10);
  /// negative when the candidate was pruned before evaluation.
  double PredL1Misses = -1.0;
  double PredL2Misses = -1.0;
  /// Cost-model score (Eq. 11 weighted total, or the spatial Eq. 15/17
  /// total); negative when pruned before scoring.
  double Cost = -1.0;
  /// Which scoring path produced the numbers: "analytic" (closed-form
  /// model) or "sim" (cache emulation / access-program simulation).
  std::string ScoredBy;
  /// True when this candidate became the best-so-far when evaluated.
  bool Accepted = false;
  /// Why it was accepted or pruned ("best so far", "cost above best",
  /// "ws-L1 overflow", "parallelism constraint", ...).
  std::string Reason;
};

/// The full provenance of one optimize() call on one stage.
struct DecisionRecord {
  std::string Stage;          ///< Func name
  std::string Classification; ///< classifier verdict (Figure 3)
  std::string Chosen;         ///< final schedule description
  /// The serve request this decision belongs to (obs::currentRequestId()
  /// at beginDecision time; empty outside a request scope), joining
  /// provenance against log lines and spans.
  std::string RequestId;
  std::vector<CandidateRecord> Candidates;
};

/// True when candidate recording is active.
bool explainEnabled();

/// Turns the decision log on or off.
void setExplainEnabled(bool Enabled);

/// Opens a decision scope for the current thread. Candidates recorded
/// until endDecision attach to it.
void beginDecision(const std::string &Stage,
                   const std::string &Classification);

/// Appends a candidate to the current thread's open decision (no-op when
/// the log is disabled or no decision is open).
void recordCandidate(CandidateRecord Record);

/// Closes the current decision with the final schedule description and
/// publishes it to the global log.
void endDecision(const std::string &Chosen);

/// Takes (and clears) every published decision, in publish order.
std::vector<DecisionRecord> takeDecisions();

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_PROVENANCE_H
