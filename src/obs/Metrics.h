//===- Metrics.h - histograms, gauges and Prometheus export -----*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-metrics half of the telemetry layer: always-on,
/// lock-free latency *histograms* and point-in-time *gauges*, exported
/// (together with the monotonic counters of Telemetry.h) as Prometheus
/// text-exposition format via `renderPrometheusText` — scraped over the
/// wire by the `metrics` serve op and optionally written to a snapshot
/// file on an interval by `MetricsSnapshotter`.
///
/// Histograms use log-linear bucketing over nanoseconds: each power-of-2
/// octave is split into 8 linear sub-buckets, bounding the relative
/// bucket width at 12.5% across the full uint64 range with 496 fixed
/// buckets. An observation is two relaxed fetch_adds (bucket count and
/// running sum) — no locks, no allocation — so per-request recording is
/// safe on the serve hot path. Snapshots from concurrent threads are
/// mergeable by bucket-wise addition, and quantiles (p50/p90/p99/p99.9)
/// are derived from any snapshot by a cumulative-rank walk with linear
/// interpolation inside the landing bucket.
///
/// Recording honours `metricsEnabled()` at the call site (callers guard
/// their observe calls); `-DLTP_OBS_DISABLED` compiles the guard to a
/// constant false.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_OBS_METRICS_H
#define LTP_OBS_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ltp {
namespace obs {

//===----------------------------------------------------------------------===//
// Runtime toggle
//===----------------------------------------------------------------------===//

namespace detail {
/// Master switch for metric recording. On by default; LTP_METRICS=0 in
/// the environment or setMetricsEnabled(false) turns it off.
extern std::atomic<bool> MetricsEnabled;
} // namespace detail

/// True when histogram/gauge recording is active.
inline bool metricsEnabled() {
#ifdef LTP_OBS_DISABLED
  return false;
#else
  return detail::MetricsEnabled.load(std::memory_order_relaxed);
#endif
}

/// Turns metric recording on or off (bench/serve_load measures the
/// overhead of the "on" state against this "off" state).
void setMetricsEnabled(bool Enabled);

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

/// Lock-free log-linear latency histogram over milliseconds (stored as
/// nanosecond buckets). Thread-safe: observe() from any number of
/// threads concurrently with snapshot().
class Histogram {
public:
  /// Sub-buckets per power-of-2 octave (8 → 12.5% max relative error
  /// before interpolation).
  static constexpr int SubBits = 3;
  static constexpr int SubBuckets = 1 << SubBits;
  /// Buckets 0..SubBuckets-1 cover [0, SubBuckets) ns linearly; each
  /// later block of SubBuckets covers one octave.
  static constexpr size_t NumBuckets =
      static_cast<size_t>(64 - SubBits + 1) * SubBuckets;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Records one latency observation. Two relaxed fetch_adds; negative
  /// values clamp to zero.
  void observe(double Millis);

  /// A point-in-time copy of the bucket counts, mergeable across
  /// histograms (per-thread or per-shard) by bucket-wise addition.
  struct Snapshot {
    std::vector<uint64_t> Counts; ///< size NumBuckets
    double SumMillis = 0.0;
    uint64_t Count = 0;

    /// Adds \p Other bucket-wise (the merge used to combine per-thread
    /// histograms into one distribution).
    void merge(const Snapshot &Other);

    /// Quantile in milliseconds by cumulative-rank walk with linear
    /// interpolation inside the landing bucket. \p Q in [0, 1]. Returns
    /// a negative value when the snapshot is empty.
    double quantile(double Q) const;
  };

  Snapshot snapshot() const;

  /// The bucket an observation of \p Nanos lands in.
  static size_t bucketIndex(uint64_t Nanos);
  /// Inclusive lower / exclusive upper bucket bounds in milliseconds
  /// (computed in double to avoid overflow on the top octave).
  static double bucketLowerMillis(size_t Index);
  static double bucketUpperMillis(size_t Index);

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> SumNanos{0};
};

/// Finds or creates the histogram named \p Name. Thread-safe; the
/// returned reference stays valid for the process lifetime — cache it in
/// a function-local static when observing from a hot path.
Histogram &histogram(const std::string &Name);

/// Snapshots of every registered histogram, sorted by name.
std::vector<std::pair<std::string, Histogram::Snapshot>> histogramSnapshot();

//===----------------------------------------------------------------------===//
// Gauge
//===----------------------------------------------------------------------===//

/// A point-in-time value (queue depth, live connections, table size).
/// Unlike Counter, a gauge is expected to go down.
class Gauge {
public:
  Gauge() = default;
  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Finds or creates the gauge named \p Name (same lifetime contract as
/// histogram()).
Gauge &gauge(const std::string &Name);

/// All registered gauges with their current values, sorted by name.
std::vector<std::pair<std::string, int64_t>> gaugeSnapshot();

//===----------------------------------------------------------------------===//
// Prometheus export
//===----------------------------------------------------------------------===//

/// Mangles a registry name into a Prometheus metric name: "ltp_" prefix,
/// non-alphanumerics to '_' ("serve.request_ms" → "ltp_serve_request_ms").
std::string prometheusName(const std::string &Name);

/// Renders every counter, gauge and histogram in Prometheus text
/// exposition format (`# TYPE` line per family; cumulative `_bucket`
/// samples with an explicit `+Inf`, then `_sum` and `_count`, per
/// histogram). Empty histogram buckets are elided.
std::string renderPrometheusText();

/// Writes renderPrometheusText() to \p Path (atomically, via a .tmp
/// rename). Returns false and fills \p Error on I/O failure.
bool writeMetricsSnapshot(const std::string &Path,
                          std::string *Error = nullptr);

/// Background thread writing a metrics snapshot to a file every
/// \p IntervalSeconds, plus once on destruction, so an external scraper
/// (or a human with `cat`) always finds a recent exposition.
class MetricsSnapshotter {
public:
  MetricsSnapshotter(std::string Path, double IntervalSeconds);
  MetricsSnapshotter(const MetricsSnapshotter &) = delete;
  MetricsSnapshotter &operator=(const MetricsSnapshotter &) = delete;
  ~MetricsSnapshotter();

  /// Stops the periodic thread after one final snapshot (idempotent).
  void stop();

private:
  struct Impl;
  Impl *State;
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_METRICS_H
