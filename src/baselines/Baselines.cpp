//===- Baselines.cpp - comparison schedulers (Section 5) -----------------===//

#include "baselines/Baselines.h"

#include "model/CacheEmu.h"
#include "model/CostModel.h"

#include <algorithm>
#include <cassert>

using namespace ltp;

namespace {

/// Parallel outer + vectorized inner for one stage.
void parVecStage(Func &F, int StageIndex, const StageAccessInfo &Info,
                 const ArchParams &Arch) {
  Stage S = StageIndex < 0 ? F.pureStage() : F.update(StageIndex);
  // Reorder so reduction loops sit between the column loop and the outer
  // pure loops — the classic hand-written i/k/j nest for matmul-likes.
  std::vector<VarName> Order;
  const std::string Column = Info.Loops.front().Name;
  Order.push_back(Column);
  for (const LoopInfo &Loop : Info.Loops)
    if (Loop.IsReduction)
      Order.push_back(Loop.Name);
  std::string OutermostPure;
  for (const LoopInfo &Loop : Info.Loops)
    if (!Loop.IsReduction && Loop.Name != Column) {
      Order.push_back(Loop.Name);
      OutermostPure = Loop.Name;
    }
  if (Order.size() > 1)
    S.reorder(Order);
  if (!OutermostPure.empty() && Arch.NCores > 1)
    S.parallel(OutermostPure);
  if (Arch.VectorWidth > 1 &&
      Info.Loops.front().Extent >= Arch.VectorWidth)
    S.vectorize(Column);
}

int64_t floorPow2(int64_t V) {
  int64_t P = 1;
  while (P * 2 <= V)
    P *= 2;
  return P;
}

} // namespace

void ltp::applyBaselineSchedule(Func &F,
                                const std::vector<int64_t> &OutputExtents,
                                const ArchParams &Arch) {
  F.clearSchedules();
  for (int StageIdx = -1; StageIdx != F.numUpdates(); ++StageIdx) {
    StageAccessInfo Info = analyzeStage(F, StageIdx, OutputExtents);
    parVecStage(F, StageIdx, Info, Arch);
  }
}

void ltp::applyAutoSchedulerSchedule(
    Func &F, const std::vector<int64_t> &OutputExtents,
    const ArchParams &Arch) {
  F.clearSchedules();

  // Init stages get the plain treatment; the compute stage is tiled.
  int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
  for (int StageIdx = -1; StageIdx != F.numUpdates(); ++StageIdx) {
    StageAccessInfo Info = analyzeStage(F, StageIdx, OutputExtents);
    if (StageIdx != ComputeStage) {
      parVecStage(F, StageIdx, Info, Arch);
      continue;
    }

    // Square power-of-two tile over the pure (output) dimensions, sized so
    // the footprint with unit reduction slices fits the single modeled
    // cache level (L2). Reduction loops are never tiled — the documented
    // Auto-Scheduler limitation the paper contrasts against.
    std::vector<const LoopInfo *> PureLoops;
    for (const LoopInfo &Loop : Info.Loops)
      if (!Loop.IsReduction)
        PureLoops.push_back(&Loop);
    const int64_t Budget = Arch.L2.SizeBytes / Info.DTS;

    int64_t Tile = std::max<int64_t>(Arch.VectorWidth, 8);
    for (;;) {
      int64_t Next = Tile * 2;
      bool Fits = true;
      TileMap Tiles;
      for (const LoopInfo &Loop : Info.Loops)
        Tiles[Loop.Name] =
            Loop.IsReduction ? 1 : std::min(Next, Loop.Extent);
      if (workingSetElements(Info, Tiles) > Budget)
        Fits = false;
      bool Grew = false;
      for (const LoopInfo *Loop : PureLoops)
        Grew |= std::min(Next, Loop->Extent) > std::min(Tile, Loop->Extent);
      if (!Fits || !Grew)
        break;
      Tile = Next;
    }

    Stage Sched = ComputeStage < 0 ? F.pureStage() : F.update(ComputeStage);
    std::vector<VarName> Order;
    std::vector<std::string> InterNames;
    for (const LoopInfo *Loop : PureLoops) {
      int64_t T = std::min(Tile, floorPow2(Loop->Extent));
      if (T < Loop->Extent) {
        Sched.split(Loop->Name, Loop->Name + "_t", Loop->Name + "_i", T);
        Order.push_back(Loop->Name + "_i");
        InterNames.push_back(Loop->Name + "_t");
      } else {
        Order.push_back(Loop->Name);
      }
    }
    // Reduction loops run between the intra-tile block and the tile loops
    // (the output tile stays resident while the reduction streams).
    for (const LoopInfo &Loop : Info.Loops)
      if (Loop.IsReduction)
        Order.push_back(Loop.Name);
    for (const std::string &Name : InterNames)
      Order.push_back(Name);
    Sched.reorder(Order);
    if (!InterNames.empty() && Arch.NCores > 1)
      Sched.parallel(InterNames.back());
    const LoopInfo &Column = Info.Loops.front();
    if (Arch.VectorWidth > 1 && Column.Extent >= Arch.VectorWidth) {
      std::string Name =
          std::min(Tile, floorPow2(Column.Extent)) < Column.Extent
              ? Column.Name + "_i"
              : Column.Name;
      Sched.vectorize(Name);
    }
  }
}

//===----------------------------------------------------------------------===//
// TSS / TTS tile-size selection
//===----------------------------------------------------------------------===//

namespace {

/// Shared search used by TSS and TTS: prefetch-unaware miss model with
/// per-model cache budgets and emulation bounds. Loop permutations are
/// granted for free (Section 5.2), so the pivot search mirrors the
/// proposed optimizer's; only the model differs.
struct LevelBudgets {
  CacheParams InnerCache;  // the level the intra-tile working set targets
  CacheParams OuterCache;  // the level whole tiles target
  int64_t InnerBudgetElems;
  int64_t OuterBudgetElems;
};

TemporalSchedule optimizePrefetchUnaware(const StageAccessInfo &Info,
                                         const ArchParams &Arch,
                                         const LevelBudgets &Budgets) {
  const std::string Column = Info.outputColumnVar();
  const LoopInfo *ColumnLoop = nullptr;
  for (const LoopInfo &Loop : Info.Loops)
    if (Loop.Name == Column)
      ColumnLoop = &Loop;
  assert(ColumnLoop && "column loop missing");
  const int64_t Bc = ColumnLoop->Extent;
  const int64_t Lc = std::max<int64_t>(1, Arch.L1.LineBytes / Info.DTS);

  std::vector<const LoopInfo *> BigLoops;
  std::vector<const LoopInfo *> SmallLoops;
  for (const LoopInfo &Loop : Info.Loops) {
    if (Loop.Extent > 8)
      BigLoops.push_back(&Loop);
    else
      SmallLoops.push_back(&Loop);
  }

  TemporalSchedule Best;
  Best.Cost = -1.0;
  for (const LoopInfo *U : BigLoops) {
    if (U->Name == Column)
      continue;
    for (const LoopInfo *V : BigLoops) {
      if (V->Name == Column)
        continue; // keep the column dimension for the intra tile only
      for (int64_t Tc = Arch.VectorWidth; Tc <= Bc; Tc *= 2) {
        CacheEmuParams Emu;
        Emu.Cache = Budgets.InnerCache;
        Emu.L1LineBytes = Arch.L1.LineBytes;
        Emu.DTS = Info.DTS;
        Emu.PrevTileElems = Tc;
        Emu.RowStrideElems = Bc;
        Emu.EffectiveWaysDivisor = std::max(1, Arch.NThreadsPerCore);
        Emu.MaxRows = U->Extent;
        Emu.NoPrefetchPadding = true;
        int64_t MaxTU = emulateMaxTileDim(Emu);

        for (int64_t Tu = 2; Tu <= std::min(MaxTU, U->Extent); Tu *= 2) {
          for (int64_t Tv = 2; Tv < V->Extent; Tv *= 2) {
            TileMap Tiles;
            for (const LoopInfo &Loop : Info.Loops)
              Tiles[Loop.Name] = Loop.Extent;
            Tiles[Column] = std::min(Tc, Bc);
            Tiles[U->Name] = Tu;
            Tiles[V->Name] = Tv;
            for (const LoopInfo *Loop : BigLoops)
              if (Loop != U && Loop != V && Loop->Name != Column)
                Tiles[Loop->Name] = std::min<int64_t>(Loop->Extent, 64);

            TileMap InnerTiles = Tiles;
            InnerTiles[U->Name] = 1;
            if (workingSetElements(Info, InnerTiles) >
                Budgets.InnerBudgetElems)
              continue;
            if (workingSetElements(Info, Tiles) > Budgets.OuterBudgetElems)
              continue;

            double Cost =
                Arch.A2 * estimateL1MissesNoPrefetch(Info, Tiles, U->Name,
                                                     Lc) +
                Arch.A3 * estimateL2MissesNoPrefetch(Info, Tiles, V->Name,
                                                     Lc);
            if (Best.Cost >= 0.0 && Cost >= Best.Cost)
              continue;
            Best.Cost = Cost;
            Best.Tiles = Tiles;
            Best.IntraOrder = {U->Name};
            Best.InterOrder = {V->Name};
            Best.MaxT1 = MaxTU;
          }
        }
      }
    }
  }
  assert(Best.Cost >= 0.0 && "no feasible TSS/TTS tiling found");

  // Assemble the orders: column innermost, small loops, middles, u
  // outermost intra; tiled loops v-first inter with the parallel loop
  // outermost.
  const std::string U = Best.IntraOrder.front();
  const std::string V = Best.InterOrder.front();
  Best.IntraOrder.clear();
  Best.IntraOrder.push_back(Column);
  for (const LoopInfo *Loop : SmallLoops)
    Best.IntraOrder.push_back(Loop->Name);
  for (const LoopInfo *Loop : BigLoops)
    if (Loop->Name != Column && Loop->Name != U)
      Best.IntraOrder.push_back(Loop->Name);
  Best.IntraOrder.push_back(U);

  Best.InterOrder.clear();
  Best.InterOrder.push_back(V);
  std::string ParallelVar;
  for (const LoopInfo &Loop : Info.Loops) {
    if (Best.Tiles.at(Loop.Name) >= Loop.Extent || Loop.Name == V)
      continue;
    Best.InterOrder.push_back(Loop.Name);
    if (!Loop.IsReduction)
      ParallelVar = Loop.Name;
  }
  // Keep the parallel candidate outermost.
  if (!ParallelVar.empty()) {
    Best.InterOrder.erase(std::remove(Best.InterOrder.begin(),
                                      Best.InterOrder.end(), ParallelVar),
                          Best.InterOrder.end());
    Best.InterOrder.push_back(ParallelVar);
    Best.ParallelVar = ParallelVar;
  } else {
    const LoopInfo *VLoop = nullptr;
    for (const LoopInfo &Loop : Info.Loops)
      if (Loop.Name == V)
        VLoop = &Loop;
    if (VLoop && !VLoop->IsReduction && Best.InterOrder.size() == 1)
      Best.ParallelVar = V;
  }

  if (Arch.VectorWidth > 1 && Best.Tiles.at(Column) >= Arch.VectorWidth) {
    Best.VectorVar = Column;
    Best.VectorWidth = Arch.VectorWidth;
  }
  return Best;
}

} // namespace

TemporalSchedule ltp::optimizeTSS(const StageAccessInfo &Info,
                                  const ArchParams &Arch) {
  // TSS: intra-tile reuse in L1, whole tiles in L2; associativity aware
  // via the emulation bound, prefetching ignored entirely.
  LevelBudgets Budgets;
  Budgets.InnerCache = Arch.L1;
  Budgets.OuterCache = Arch.L2;
  Budgets.InnerBudgetElems = Arch.L1.SizeBytes / Info.DTS;
  Budgets.OuterBudgetElems = Arch.L2.SizeBytes / Info.DTS;
  return optimizePrefetchUnaware(Info, Arch, Budgets);
}

TemporalSchedule ltp::optimizeTTS(const StageAccessInfo &Info,
                                  const ArchParams &Arch) {
  // TurboTiling: intra-tile reuse in L2, whole tiles in the LLC (assumed
  // to be kept warm by the prefetchers), so tiles come out much larger
  // than TSS's; the miss model still counts prefetched references.
  LevelBudgets Budgets;
  Budgets.InnerCache = Arch.L2;
  Budgets.OuterCache = Arch.L3.SizeBytes > 0 ? Arch.L3 : Arch.L2;
  Budgets.InnerBudgetElems = Arch.L2.SizeBytes / Info.DTS;
  int64_t LLCBytes = Arch.L3.SizeBytes > 0
                         ? Arch.L3.SizeBytes / std::max(1, Arch.NCores)
                         : Arch.L2.SizeBytes;
  Budgets.OuterBudgetElems = LLCBytes / Info.DTS;
  return optimizePrefetchUnaware(Info, Arch, Budgets);
}
