//===- Autotuner.cpp - OpenTuner-style schedule search -------------------===//

#include "baselines/Autotuner.h"

#include "analysis/Legality.h"
#include "analysis/Lint.h"
#include "benchmarks/PipelineRunner.h"
#include "core/AccessInfo.h"
#include "model/MissModel.h"
#include "obs/Metrics.h"
#include "obs/Provenance.h"
#include "obs/Telemetry.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

using namespace ltp;

namespace {

/// One randomly drawn schedule for one stage.
struct StageDecision {
  /// Tile per pure loop (== extent means untiled).
  std::map<std::string, int64_t> Tiles;
  /// Permutation seed for the middle loops.
  uint32_t OrderSeed = 0;
  bool Parallel = true;
  bool Vectorize = true;
};

using PipelineDecision = std::vector<StageDecision>;

StageDecision drawDecision(const StageAccessInfo &Info, std::mt19937 &Rng,
                           const AutotuneOptions &Options) {
  StageDecision D;
  for (const LoopInfo &Loop : Info.Loops) {
    if (Loop.IsReduction && !Options.TileReductions)
      continue;
    if (Loop.Extent < 16)
      continue;
    // Tile sizes are powers of two between 8 and the extent; "untiled" is
    // one more outcome.
    int MaxLog = 0;
    while ((int64_t(1) << (MaxLog + 1)) <= Loop.Extent)
      ++MaxLog;
    std::uniform_int_distribution<int> Dist(3, MaxLog + 1);
    int Log = Dist(Rng);
    if (Log <= MaxLog)
      D.Tiles[Loop.Name] = int64_t(1) << Log;
  }
  D.OrderSeed = Rng();
  D.Parallel = std::uniform_int_distribution<int>(0, 9)(Rng) != 0;
  D.Vectorize = std::uniform_int_distribution<int>(0, 9)(Rng) != 0;
  return D;
}

/// Applies one decision to one stage.
void applyDecision(Func &F, int StageIndex, const StageAccessInfo &Info,
                   const StageDecision &D, const ArchParams &Arch) {
  Stage S = StageIndex < 0 ? F.pureStage() : F.update(StageIndex);

  std::vector<std::string> Intra;
  std::vector<std::string> Inter;
  const std::string Column = Info.Loops.front().Name;
  for (const LoopInfo &Loop : Info.Loops) {
    auto It = D.Tiles.find(Loop.Name);
    bool Tiled = It != D.Tiles.end() && It->second < Loop.Extent;
    if (Tiled) {
      S.split(Loop.Name, Loop.Name + "_t", Loop.Name + "_i", It->second);
      Intra.push_back(Loop.Name + "_i");
      Inter.push_back(Loop.Name + "_t");
    } else {
      Intra.push_back(Loop.Name);
    }
  }

  // Shuffle the loops except the innermost (kept for vectorization) and
  // the outermost inter-tile loop (kept for parallelism).
  std::mt19937 OrderRng(D.OrderSeed);
  if (Intra.size() > 1)
    std::shuffle(Intra.begin() + 1, Intra.end(), OrderRng);
  if (Inter.size() > 1)
    std::shuffle(Inter.begin(), Inter.end() - 1, OrderRng);

  std::vector<VarName> Order;
  for (const std::string &Name : Intra)
    Order.push_back(Name);
  for (const std::string &Name : Inter)
    Order.push_back(Name);
  if (Order.size() > 1)
    S.reorder(Order);

  if (D.Parallel && Arch.NCores > 1 && !Order.empty()) {
    // Parallelize the outermost loop of the final order most of the time,
    // occasionally any loop. The draw is purity-blind: illegal picks (a
    // dependence-carrying reduction loop, say) are discarded by the
    // static verifier before compilation, the way OpenTuner discards
    // invalid configurations instead of steering the generator around
    // them.
    size_t Pick = Order.size() - 1;
    if (std::uniform_int_distribution<int>(0, 9)(OrderRng) < 3)
      Pick = std::uniform_int_distribution<size_t>(0, Order.size() - 1)(
          OrderRng);
    S.parallel(Order[Pick]);
  }
  if (D.Vectorize && Arch.VectorWidth > 1 && !Order.empty()) {
    // Mostly the innermost (column) loop, occasionally any loop. Like the
    // parallel draw this is purity-blind; a vectorize drawn on a
    // dependence-carrying reduction loop is pruned statically.
    if (std::uniform_int_distribution<int>(0, 9)(OrderRng) < 3) {
      size_t Pick = std::uniform_int_distribution<size_t>(0, Order.size() - 1)(
          OrderRng);
      S.vectorize(Order[Pick]);
    } else {
      auto It = D.Tiles.find(Column);
      bool Tiled = It != D.Tiles.end() &&
                   It->second < Info.Loops.front().Extent;
      int64_t InnerExtent = Tiled ? It->second : Info.Loops.front().Extent;
      if (InnerExtent >= Arch.VectorWidth)
        S.vectorize(Tiled ? Column + "_i" : Column);
    }
  }
}

void applyPipelineDecision(BenchmarkInstance &Instance,
                           const PipelineDecision &Decision,
                           const ArchParams &Arch) {
  for (size_t I = 0; I != Instance.Stages.size(); ++I) {
    Func &F = Instance.Stages[I];
    F.clearSchedules();
    int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
    StageAccessInfo Info =
        analyzeStage(F, ComputeStage, Instance.StageExtents[I]);
    applyDecision(F, ComputeStage, Info, Decision[I], Arch);
  }
}

std::string describeDecision(const PipelineDecision &Decision) {
  std::vector<std::string> Parts;
  for (const StageDecision &D : Decision) {
    std::vector<std::string> Tiles;
    for (const auto &[Var, T] : D.Tiles)
      Tiles.push_back(strFormat("%s=%lld", Var.c_str(),
                                static_cast<long long>(T)));
    Parts.push_back("{" + join(Tiles, ",") + "}");
  }
  return join(Parts, " ; ");
}

} // namespace

AutotuneOutcome ltp::autotune(BenchmarkInstance &Instance,
                              JITCompiler &Compiler,
                              const AutotuneOptions &Options) {
  obs::ScopedSpan Span("autotune.search");
  static obs::Counter &EvaluatedCounter = obs::counter("autotune.evaluated");
  static obs::Counter &PrunedCounter = obs::counter("autotune.pruned");
  static obs::Counter &FailedCounter = obs::counter("autotune.failed");
  static obs::Counter &ModelPrunedCounter =
      obs::counter("autotune.pruned.model");
  static obs::Counter &LintPrunedCounter =
      obs::counter("opt.candidates.lint_pruned");
  static obs::Counter &PredictAnalytic =
      obs::counter("model.predict.analytic");
  static obs::Counter &PredictFallback =
      obs::counter("model.predict.fallback");
  std::mt19937 Rng(Options.Seed);
  ArchParams Arch = detectHost();
  Timer Budget;

  AutotuneOutcome Outcome;
  PipelineDecision BestDecision;

  // Under --explain, every lint-pruned candidate and every new best is
  // logged with its reason so the search is auditable like the optimizer.
  const bool Explain = obs::explainEnabled();
  if (Explain)
    obs::beginDecision(Instance.Stages.back().name(), "autotune");

  const bool ModelPruning = Options.ModelKeepFraction < 1.0;
  model::BufferStrides Strides;
  for (const auto &[Name, Buf] : Instance.Buffers)
    Strides[Name] = Buf.Strides;

  // Predicted weighted misses (Eq. 11 weights) for the candidate whose
  // schedules are currently applied to the instance. Closed form when it
  // applies; the cache simulator otherwise (always, in Sim mode).
  auto ScoreCandidate = [&](bool &UsedAnalytic) {
    double Score = 0.0;
    UsedAnalytic = Options.Score != model::ScoreMode::Sim;
    if (UsedAnalytic) {
      for (size_t I = 0; I != Instance.Stages.size() && UsedAnalytic; ++I) {
        const Func &F = Instance.Stages[I];
        int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
        StageAccessInfo Info =
            analyzeStage(F, ComputeStage, Instance.StageExtents[I]);
        std::vector<model::LoopDim> Nest;
        if (!model::scheduledNest(F, ComputeStage, Info, Nest)) {
          UsedAnalytic = false;
          break;
        }
        model::MissPrediction P =
            model::predictMisses(Info, Nest, Arch, Strides);
        if (!P.Analytic) {
          UsedAnalytic = false;
          break;
        }
        Score += Arch.A2 * P.L1Misses + Arch.A3 * P.L2Misses;
      }
    }
    if (!UsedAnalytic) {
      SimResult R = simulatePipeline(Instance, Arch);
      Score = Arch.A2 * static_cast<double>(R.Stats.L1.DemandMisses) +
              Arch.A3 * static_cast<double>(R.Stats.L2.DemandMisses);
    }
    (UsedAnalytic ? PredictAnalytic : PredictFallback).add();
    ++(UsedAnalytic ? Outcome.ScoredAnalytic : Outcome.ScoredSim);
    return Score;
  };

  // Candidates are drawn and compiled in batches: compilePipelines fans
  // the cold cc invocations across the thread pool, then each candidate
  // is timed serially. The draw order (and thus, under MaxCandidates,
  // the candidate set) is identical to the one-at-a-time search.
  int Drawn = 0;
  while (Budget.elapsedSeconds() < Options.BudgetSeconds &&
         (Options.MaxCandidates == 0 || Drawn < Options.MaxCandidates)) {
    int BatchN = std::max(1, Options.BatchSize);
    if (Options.MaxCandidates > 0)
      BatchN = std::min(BatchN, Options.MaxCandidates - Drawn);

    struct Ranked {
      PipelineDecision Decision;
      double Score = 0.0;
    };
    std::vector<Ranked> Legal;
    for (int B = 0; B != BatchN; ++B) {
      PipelineDecision Decision;
      for (size_t I = 0; I != Instance.Stages.size(); ++I) {
        Func &F = Instance.Stages[I];
        int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
        StageAccessInfo Info =
            analyzeStage(F, ComputeStage, Instance.StageExtents[I]);
        Decision.push_back(drawDecision(Info, Rng, Options));
      }
      applyPipelineDecision(Instance, Decision, Arch);
      // Static legality pruning: drop candidates the verifier rejects
      // before spending a compilation on them. The per-stage reports are
      // kept for reuse by the lint pass below.
      std::vector<analysis::LegalityReport> StageLegality(
          Instance.Stages.size());
      bool Illegal = false;
      for (size_t I = 0; I != Instance.Stages.size() && !Illegal; ++I) {
        const Func &F = Instance.Stages[I];
        int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
        StageLegality[I] = analysis::verifyStageSchedule(
            F, ComputeStage, Instance.StageExtents[I]);
        Illegal = StageLegality[I].hasErrors();
      }
      if (Illegal) {
        ++Outcome.CandidatesPruned;
        PrunedCounter.add();
        continue;
      }
      // Lint pruning: drop legal candidates a static diagnostic of Error
      // severity marks as prefetcher-hostile (an oversized tile, a
      // scattering vectorize) before spending a compilation on them.
      if (Options.LintPrune) {
        std::string LintRule;
        for (size_t I = 0; I != Instance.Stages.size() && LintRule.empty();
             ++I) {
          Func &F = Instance.Stages[I];
          int ComputeStage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
          lint::LintOptions LintOpts;
          LintOpts.Score = Options.Score;
          LintOpts.PrecomputedLegality = &StageLegality[I];
          lint::LintReport Report = lint::lintStageSchedule(
              F, ComputeStage, Instance.StageExtents[I], Arch, LintOpts);
          for (const lint::Diagnostic &D : Report.Diagnostics)
            if (D.Sev == analysis::Severity::Error) {
              LintRule = D.RuleId;
              break;
            }
        }
        if (!LintRule.empty()) {
          ++Outcome.CandidatesLintPruned;
          LintPrunedCounter.add();
          if (Explain) {
            obs::CandidateRecord Rec;
            Rec.Candidate = describeDecision(Decision);
            Rec.Reason = "lint: " + LintRule;
            obs::recordCandidate(std::move(Rec));
          }
          continue;
        }
      }
      Ranked R;
      if (ModelPruning) {
        bool UsedAnalytic = false;
        R.Score = ScoreCandidate(UsedAnalytic);
      }
      R.Decision = std::move(Decision);
      Legal.push_back(std::move(R));
    }
    Drawn += BatchN;

    // Miss-model ranking: compile only the most promising fraction of the
    // legal candidates. The stable sort keeps the draw order on ties, so
    // the search stays a deterministic function of the seed.
    if (ModelPruning && Legal.size() > 1) {
      size_t Keep = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(
                 static_cast<double>(Legal.size()) *
                 std::max(0.0, Options.ModelKeepFraction))));
      if (Keep < Legal.size()) {
        std::stable_sort(Legal.begin(), Legal.end(),
                         [](const Ranked &A, const Ranked &B) {
                           return A.Score < B.Score;
                         });
        int Dropped = static_cast<int>(Legal.size() - Keep);
        Outcome.CandidatesModelPruned += Dropped;
        ModelPrunedCounter.add(Dropped);
        Legal.resize(Keep);
      }
    }

    std::vector<PipelineDecision> Batch;
    std::vector<PipelineCompileJob> Jobs;
    for (Ranked &R : Legal) {
      applyPipelineDecision(Instance, R.Decision, Arch);
      Jobs.push_back(makeCompileJob(Instance));
      Batch.push_back(std::move(R.Decision));
    }

    std::vector<ErrorOr<CompiledPipeline>> Compiled =
        compilePipelines(Jobs, Compiler);
    for (size_t B = 0; B != Batch.size(); ++B) {
      if (!Compiled[B]) {
        ++Outcome.CandidatesFailed;
        FailedCounter.add();
        continue;
      }
      double Seconds = timeBestOf(
          static_cast<unsigned>(std::max(1, Options.RunsPerCandidate)),
          [&] { Compiled[B]->run(Instance); });
      ++Outcome.CandidatesEvaluated;
      EvaluatedCounter.add();
      if (Outcome.BestSeconds < 0.0 || Seconds < Outcome.BestSeconds) {
        Outcome.BestSeconds = Seconds;
        BestDecision = Batch[B];
        if (Explain) {
          obs::CandidateRecord Rec;
          Rec.Candidate = describeDecision(Batch[B]);
          Rec.Accepted = true;
          Rec.Reason = strFormat("best so far (%.3f ms)", Seconds * 1e3);
          obs::recordCandidate(std::move(Rec));
        }
      }
    }
  }

  if (!BestDecision.empty()) {
    applyPipelineDecision(Instance, BestDecision, Arch);
    Outcome.BestDescription = describeDecision(BestDecision);
  }
  if (Explain)
    obs::endDecision(Outcome.BestDescription.empty()
                         ? "no candidate evaluated"
                         : Outcome.BestDescription);
  if (obs::metricsEnabled()) {
    static obs::Histogram &SearchHist = obs::histogram("autotune.search_ms");
    SearchHist.observe(Budget.elapsedMillis());
  }
  return Outcome;
}
