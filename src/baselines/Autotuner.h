//===- Autotuner.h - OpenTuner-style schedule search ------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the Halide/OpenTuner autotuner used as the
/// paper's empirical comparison point: random schedule search evaluated
/// by actually compiling (through the JIT) and timing each candidate
/// until a wall-clock budget runs out. As the paper notes, the search
/// space "only attempt[s] tiling in the dimensions of the output array" —
/// reduction loops are never tiled — which is one of the two reasons the
/// autotuner converges to poor schedules on these kernels (the other
/// being the budget itself).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_BASELINES_AUTOTUNER_H
#define LTP_BASELINES_AUTOTUNER_H

#include "benchmarks/Benchmarks.h"
#include "jit/JIT.h"
#include "model/ScoreMode.h"

#include <cstdint>
#include <string>

namespace ltp {

/// Search configuration.
struct AutotuneOptions {
  /// Wall-clock search budget (the paper used 1 hour / 1 day; scaled down
  /// here and recorded in EXPERIMENTS.md).
  double BudgetSeconds = 10.0;
  /// RNG seed; runs are deterministic given the seed and budget outcomes.
  uint32_t Seed = 42;
  /// Allow tiling reduction dimensions too (not part of the paper's
  /// autotuner search space; available for ablation).
  bool TileReductions = false;
  /// Timed runs per candidate (minimum is kept).
  int RunsPerCandidate = 1;
  /// Candidates drawn per compilation batch; each batch is compiled in
  /// one JITCompiler::compileMany call so the cc invocations overlap on
  /// the thread pool before any candidate is timed.
  int BatchSize = 8;
  /// Hard cap on candidates drawn (0 = budget-only). With a cap the
  /// candidate set is a deterministic function of the seed, so a warm
  /// rerun replays exactly the schedules a cold run compiled and the
  /// on-disk kernel cache serves every compilation.
  int MaxCandidates = 0;
  /// Miss-model pruning: rank each batch's legal candidates by predicted
  /// weighted misses (Eq. 11 weights) and compile only the best
  /// `ceil(fraction * legal)` of them, spending the compile+time budget
  /// on schedules the model thinks can win. 1.0 compiles every legal
  /// candidate (the original search).
  double ModelKeepFraction = 0.5;
  /// Scoring path for the pruning stage: Analytic/Auto use the
  /// closed-form miss model with an automatic, counted fallback to the
  /// cache simulator when its applicability check fails; Sim always
  /// simulates.
  model::ScoreMode Score = model::ScoreMode::Auto;
  /// Lint pruning: after the legality verifier accepts a candidate, run
  /// the static diagnostics pass and drop the candidate when a rule of
  /// Error severity fires (an oversized tile, a scattering vectorize)
  /// before spending a compilation on it. Warnings never prune.
  bool LintPrune = true;
};

/// Search outcome. The best schedule found is left applied to the
/// instance's stages.
struct AutotuneOutcome {
  double BestSeconds = -1.0;
  int CandidatesEvaluated = 0;
  int CandidatesFailed = 0;
  /// Candidates rejected by the static legality verifier before any
  /// compilation was attempted (e.g. a parallel mark drawn on a
  /// dependence-carrying reduction loop).
  int CandidatesPruned = 0;
  /// Legal candidates dropped by the miss-model ranking before any
  /// compilation was attempted.
  int CandidatesModelPruned = 0;
  /// Legal candidates dropped because a static lint diagnostic of Error
  /// severity fired on their schedule.
  int CandidatesLintPruned = 0;
  /// Of the candidates the pruning stage scored: how many the closed-form
  /// model handled vs how many fell back to the cache simulator.
  int ScoredAnalytic = 0;
  int ScoredSim = 0;
  std::string BestDescription;
};

/// Runs the search on \p Instance using \p Compiler for evaluation.
AutotuneOutcome autotune(BenchmarkInstance &Instance, JITCompiler &Compiler,
                         const AutotuneOptions &Options = {});

} // namespace ltp

#endif // LTP_BASELINES_AUTOTUNER_H
