//===- Baselines.h - comparison schedulers (Section 5) ----------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four comparison points of the paper's evaluation:
///
///  * **Baseline** — "the most basic optimization a developer may
///    perform": parallelize the outer loop, vectorize the inner one
///    (Section 5.1).
///  * **Auto-Scheduler** — a reimplementation of the tiling core of the
///    Halide Auto-Scheduler (Mullapudi et al. [16]) with its documented
///    limitations: a single cache level and square tiles over the output
///    dimensions only.
///  * **TSS** (Mehta et al. [14]) — L1+L2 reuse with associativity but a
///    prefetch-unaware miss model.
///  * **TTS** / TurboTiling (Mehta et al. [15]) — L2+LLC reuse assuming
///    prefetchers fill the outer levels, but with prefetched references
///    still counted as cold misses in the model.
///
/// TSS/TTS produce TemporalSchedule values so they flow through the same
/// directive application as the proposed optimizer; per the paper, both
/// are granted the best loop permutation (Section 5.2: "we try every
/// possible loop permutation ... and pick the one that results in the
/// best performance").
///
//===----------------------------------------------------------------------===//

#ifndef LTP_BASELINES_BASELINES_H
#define LTP_BASELINES_BASELINES_H

#include "core/Optimizer.h"
#include "lang/Func.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ltp {

/// Developer baseline: parallel outermost pure loop + vectorized column
/// loop on every stage of \p F.
void applyBaselineSchedule(Func &F,
                           const std::vector<int64_t> &OutputExtents,
                           const ArchParams &Arch);

/// Auto-Scheduler reimplementation: square power-of-two tiles over the
/// output dimensions sized against a single cache level (L2), reductions
/// untiled; parallel outer tiles, vectorized inner columns.
void applyAutoSchedulerSchedule(Func &F,
                                const std::vector<int64_t> &OutputExtents,
                                const ArchParams &Arch);

/// TSS tile-size selection (prefetch-unaware L1+L2 model).
TemporalSchedule optimizeTSS(const StageAccessInfo &Info,
                             const ArchParams &Arch);

/// TTS / TurboTiling tile-size selection (L2+LLC model, prefetch fills
/// assumed but not modeled in the miss counts).
TemporalSchedule optimizeTTS(const StageAccessInfo &Info,
                             const ArchParams &Arch);

} // namespace ltp

#endif // LTP_BASELINES_BASELINES_H
