//===- Server.h - Unix-domain NDJSON request server -------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of `ltp-serve`: a Unix-domain stream socket
/// accepting newline-delimited JSON requests (serve/Protocol.h), one
/// handler thread per connection, all optimize requests funneled into a
/// shared OptimizerService. The server owns no optimization state — it
/// parses, dispatches, serializes — so everything interesting about
/// concurrency lives in the service's dedup table and the JIT's sharded
/// memo underneath.
///
/// Shutdown is two-phase: anything (a connection handler serving
/// `{"op":"shutdown"}`, a signal handler via requestStop) may *request*
/// a stop, and the thread blocked in wait() — normally main — performs
/// the actual teardown. Handlers never join themselves.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SERVE_SERVER_H
#define LTP_SERVE_SERVER_H

#include "serve/OptimizerService.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ltp {
namespace serve {

/// See file comment. One instance per daemon.
class Server {
public:
  /// \p SocketPath is unlinked (if stale) and bound.
  Server(std::string SocketPath, ServiceOptions Opts = {});
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens and starts the accept thread. Returns false with
  /// \p Error filled when the socket cannot be set up.
  bool start(std::string *Error = nullptr);

  /// Blocks until a stop is requested (shutdown op, requestStop, or
  /// signal flag polled every 100ms), then tears the server down.
  /// \p Poll, when set, runs on every 100ms wakeup on the waiting
  /// thread — the daemon services async requests that must not run in
  /// signal context there (SIGUSR2 flight-recorder dumps).
  void wait(const std::atomic<bool> *SignalFlag = nullptr,
            const std::function<void()> &Poll = {});

  /// Requests an orderly stop from any thread (non-blocking, safe to
  /// call repeatedly).
  void requestStop();

  /// True once a stop has been requested.
  bool stopRequested() const { return StopFlag.load(); }

  const std::string &socketPath() const { return SocketPath; }

  /// The shared optimization engine (tests poke counters through it).
  OptimizerService &service() { return Service; }

private:
  void acceptLoop();
  void handleConnection(int Fd);
  /// Closes the listening socket, wakes handlers, joins all threads.
  void teardown();

  std::string SocketPath;
  OptimizerService Service;
  int ListenFd = -1;
  std::thread Acceptor;
  std::atomic<bool> StopFlag{false};
  std::mutex StopMu;
  std::condition_variable StopCv;
  std::mutex ConnMu;
  std::vector<std::thread> Handlers;
  std::vector<int> OpenFds;
  bool TornDown = false;
};

} // namespace serve
} // namespace ltp

#endif // LTP_SERVE_SERVER_H
