//===- BatchCompiler.cpp - cross-request async compile batching -----------===//

#include "serve/BatchCompiler.h"

#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "support/Format.h"

using namespace ltp;
using namespace ltp::serve;

namespace {

obs::Counter &queueDepthGauge() {
  static obs::Counter &C = obs::counter("serve.queue_depth");
  return C;
}
obs::Counter &flushesCounter() {
  static obs::Counter &C = obs::counter("serve.batch.flushes");
  return C;
}
obs::Counter &jobsCounter() {
  static obs::Counter &C = obs::counter("serve.batch.jobs");
  return C;
}

/// Mirrors the queue depth into the metrics registry so the Prometheus
/// exposition types it as the gauge it is (the Counter above stays for
/// the stats-op surface).
void setQueueDepth(int64_t Depth) {
  queueDepthGauge().set(Depth);
  if (obs::metricsEnabled()) {
    static obs::Gauge &G = obs::gauge("serve.batch_queue_depth");
    G.set(Depth);
  }
}

} // namespace

BatchCompiler::BatchCompiler(JITCompiler &Compiler) : Compiler(Compiler) {
  Drainer = std::thread([this] { drainLoop(); });
}

BatchCompiler::~BatchCompiler() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  Drainer.join();
}

std::future<BatchCompiler::BatchResult>
BatchCompiler::submit(std::vector<CompileJob> Jobs, std::string RequestId) {
  Pending P;
  P.Jobs = std::move(Jobs);
  P.RequestId = std::move(RequestId);
  std::future<BatchResult> F = P.Result.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(P));
    setQueueDepth(static_cast<int64_t>(Queue.size()));
  }
  HasWork.notify_one();
  return F;
}

void BatchCompiler::drainLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    HasWork.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty() && Stopping)
      return;
    // Swallow everything pending; batches arriving while compileMany
    // runs coalesce into the next flush.
    std::vector<Pending> Taken;
    Taken.swap(Queue);
    setQueueDepth(0);
    Lock.unlock();

    std::vector<CompileJob> All;
    for (const Pending &P : Taken)
      All.insert(All.end(), P.Jobs.begin(), P.Jobs.end());
    obs::ScopedSpan Span("serve.batch", [&] {
      std::string Detail =
          strFormat("batches=%zu jobs=%zu", Taken.size(), All.size());
      for (const Pending &P : Taken)
        if (!P.RequestId.empty())
          Detail += " rid=" + P.RequestId;
      return Detail;
    });
    flushesCounter().add();
    jobsCounter().add(static_cast<int64_t>(All.size()));

    BatchResult Results = Compiler.compileMany(All);
    size_t Offset = 0;
    for (Pending &P : Taken) {
      BatchResult Own;
      Own.reserve(P.Jobs.size());
      for (size_t I = 0; I != P.Jobs.size(); ++I)
        Own.push_back(std::move(Results[Offset + I]));
      Offset += P.Jobs.size();
      P.Result.set_value(std::move(Own));
    }

    Lock.lock();
  }
}
