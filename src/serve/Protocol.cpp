//===- Protocol.cpp - ltp-serve wire protocol -----------------------------===//

#include "serve/Protocol.h"

#include "arch/ArchFile.h"
#include "obs/JsonCheck.h"
#include "obs/Log.h"
#include "support/Format.h"

#include <atomic>
#include <cmath>
#include <unistd.h>

using namespace ltp;
using namespace ltp::serve;

namespace {

using obs::jsonEscape;

/// Reads an integral JSON number; rejects fractions (a fractional size
/// is a client bug, not something to round silently).
bool asInt(const obs::JsonValue &V, int64_t &Out) {
  if (!V.isNumber())
    return false;
  double D = V.NumberValue;
  if (D != std::floor(D))
    return false;
  Out = static_cast<int64_t>(D);
  return true;
}

} // namespace

ErrorOr<Request> ltp::serve::parseRequest(const std::string &Line) {
  std::string Error;
  std::unique_ptr<obs::JsonValue> Root = obs::parseJson(Line, &Error);
  if (!Root)
    return ErrorOr<Request>::makeError("malformed request JSON: " + Error);
  if (!Root->isObject())
    return ErrorOr<Request>::makeError("request must be a JSON object");

  Request Req;
  for (const auto &[Name, Value] : Root->Members) {
    if (Name == "op" && Value.isString()) {
      Req.Op = Value.StringValue;
    } else if (Name == "id" && Value.isString()) {
      Req.Id = Value.StringValue;
    } else if (Name == "kernel" && Value.isString()) {
      Req.Kernel = Value.StringValue;
    } else if (Name == "size") {
      if (!asInt(Value, Req.Size) || Req.Size < 0)
        return ErrorOr<Request>::makeError(
            "field 'size' must be a non-negative integer");
    } else if (Name == "schedule" && Value.isString()) {
      Req.Schedule = Value.StringValue;
    } else if (Name == "arch" && Value.isString()) {
      Req.ArchName = Value.StringValue;
    } else if (Name == "arch_text" && Value.isString()) {
      Req.ArchText = Value.StringValue;
    } else if (Name == "score_mode" && Value.isString()) {
      Req.ScoreModeText = Value.StringValue;
    } else if (Name == "nti" && Value.K == obs::JsonValue::Kind::Bool) {
      Req.EnableNTI = Value.BoolValue;
    } else if (Name == "compile" && Value.K == obs::JsonValue::Kind::Bool) {
      Req.Compile = Value.BoolValue;
    } else {
      return ErrorOr<Request>::makeError(
          "unknown or mistyped request field '" + Name + "'");
    }
  }
  if (Req.Op != "optimize" && Req.Op != "lint" && Req.Op != "stats" &&
      Req.Op != "metrics" && Req.Op != "dump" && Req.Op != "ping" &&
      Req.Op != "shutdown")
    return ErrorOr<Request>::makeError("unknown op '" + Req.Op + "'");
  if ((Req.Op == "optimize" || Req.Op == "lint") && Req.Kernel.empty())
    return ErrorOr<Request>::makeError(Req.Op +
                                       " request is missing 'kernel'");
  return Req;
}

std::string ltp::serve::mintRequestId() {
  static std::atomic<uint64_t> NextSeq{1};
  static const long Pid = static_cast<long>(::getpid());
  return strFormat("r-%ld-%llu", Pid,
                   static_cast<unsigned long long>(
                       NextSeq.fetch_add(1, std::memory_order_relaxed)));
}

ErrorOr<ArchParams> ltp::serve::resolveArch(const Request &Req) {
  if (!Req.ArchText.empty())
    return parseArchParams(Req.ArchText);
  const std::string &Name = Req.ArchName;
  if (Name == "5930k")
    return intelI7_5930K();
  if (Name == "6700")
    return intelI7_6700();
  if (Name == "a15" || Name == "arm")
    return armCortexA15();
  if (Name == "host" || Name.empty())
    return detectHost();
  return ErrorOr<ArchParams>::makeError(
      "unknown arch '" + Name + "' (want 5930k|6700|a15|host)");
}

std::string ltp::serve::canonicalKey(const Request &Req,
                                     const ArchParams &Arch) {
  // archParamsToText round-trips through the parser, so any two
  // descriptions of the same platform render identically; everything
  // else is normalized scalar fields. The schedule text participates
  // verbatim: textual differences conservatively miss the dedup table
  // and still land on the content-addressed kernel store underneath.
  return "op=" + Req.Op + "\nkernel=" + Req.Kernel +
         "\nsize=" + std::to_string(Req.Size) +
         "\nschedule=" + Req.Schedule + "\nscore=" + Req.ScoreModeText +
         "\nnti=" + (Req.EnableNTI ? "1" : "0") +
         "\ncompile=" + (Req.Compile ? "1" : "0") + "\narch{\n" +
         archParamsToText(Arch) + "}\n";
}

std::string ltp::serve::keyHash(const std::string &Key) {
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : Key) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return strFormat("%016llx", static_cast<unsigned long long>(H));
}

const char *ltp::serve::dedupOutcomeName(DedupOutcome O) {
  switch (O) {
  case DedupOutcome::Miss:
    return "miss";
  case DedupOutcome::Inflight:
    return "inflight";
  case DedupOutcome::Cached:
    return "cached";
  }
  return "?";
}

const char *ltp::serve::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::None:
    return "none";
  case ErrorKind::BadRequest:
    return "bad_request";
  case ErrorKind::IllegalSchedule:
    return "illegal_schedule";
  case ErrorKind::Internal:
    return "internal";
  }
  return "?";
}

std::string ltp::serve::renderResponse(const Response &R) {
  std::string Out = "{";
  Out += strFormat("\"ok\": %s", R.Ok ? "true" : "false");
  if (!R.Id.empty())
    Out += ", \"id\": \"" + jsonEscape(R.Id) + "\"";
  if (!R.RequestId.empty())
    Out += ", \"request_id\": \"" + jsonEscape(R.RequestId) + "\"";
  if (!R.Ok) {
    Out += ", \"kind\": \"" + std::string(errorKindName(R.Kind)) + "\"";
    Out += ", \"error\": \"" + jsonEscape(R.Error) + "\"";
  }
  if (!R.Kernel.empty())
    Out += ", \"kernel\": \"" + jsonEscape(R.Kernel) + "\"";
  if (!R.Class.empty())
    Out += ", \"class\": \"" + jsonEscape(R.Class) + "\"";
  if (!R.Schedule.empty())
    Out += ", \"schedule\": \"" + jsonEscape(R.Schedule) + "\"";
  if (!R.Description.empty())
    Out += ", \"description\": \"" + jsonEscape(R.Description) + "\"";
  if (!R.SoPaths.empty()) {
    Out += ", \"so\": [";
    for (size_t I = 0; I != R.SoPaths.size(); ++I)
      Out += (I ? ", \"" : "\"") + jsonEscape(R.SoPaths[I]) + "\"";
    Out += "]";
  }
  if (R.LintRan) {
    // Members are pre-rendered JSON objects; an empty array means the
    // linted schedules are clean.
    Out += ", \"diagnostics\": [";
    for (size_t I = 0; I != R.DiagnosticsJson.size(); ++I)
      Out += (I ? ", " : "") + R.DiagnosticsJson[I];
    Out += "]";
  }
  if (R.Ok || R.Kind == ErrorKind::IllegalSchedule ||
      R.Kind == ErrorKind::Internal) {
    Out += ", \"dedup\": \"" +
           std::string(dedupOutcomeName(R.Dedup)) + "\"";
    Out += ", \"key\": \"" + R.KeyHash + "\"";
    Out += strFormat(", \"opt_ms\": %.4f, \"compile_ms\": %.4f",
                     R.OptMillis, R.CompileMillis);
  }
  Out += "}";
  return Out;
}
