//===- BatchCompiler.h - cross-request async compile batching ---*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Funnels the compile jobs of concurrent serve sessions into batched
/// `JITCompiler::compileMany` calls: sessions enqueue their jobs with a
/// future and continue blocking only on their own result, while a single
/// drainer thread repeatedly swallows *everything* pending and issues one
/// compileMany for the union. Requests that arrive while a batch is in
/// the compiler coalesce into the next batch, so a burst of N sessions
/// costs a handful of compileMany calls (each fanning cold builds across
/// the process thread pool) instead of N serialized compiles.
///
/// Telemetry: `serve.queue_depth` (gauge: batches waiting when the
/// drainer last looked; mirrored into the metrics-registry gauge
/// `serve.batch_queue_depth` for the Prometheus surface),
/// `serve.batch.flushes`, `serve.batch.jobs`. Each flush's span lists
/// the request IDs whose jobs it carried, so a batched compile is
/// attributable to the requests that coalesced into it.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SERVE_BATCHCOMPILER_H
#define LTP_SERVE_BATCHCOMPILER_H

#include "jit/JIT.h"

#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ltp {
namespace serve {

/// See file comment. Thread-safe; owns its drainer thread.
class BatchCompiler {
public:
  using BatchResult = std::vector<ErrorOr<CompiledKernel>>;

  explicit BatchCompiler(JITCompiler &Compiler);
  ~BatchCompiler();

  BatchCompiler(const BatchCompiler &) = delete;
  BatchCompiler &operator=(const BatchCompiler &) = delete;

  /// Enqueues \p Jobs as one batch; the future resolves with results in
  /// job order once the drainer's compileMany containing them returns.
  /// \p RequestId, when non-empty, attributes the batch's share of the
  /// flush span to the originating request.
  std::future<BatchResult> submit(std::vector<CompileJob> Jobs,
                                  std::string RequestId = {});

private:
  struct Pending {
    std::vector<CompileJob> Jobs;
    std::promise<BatchResult> Result;
    std::string RequestId;
  };

  void drainLoop();

  JITCompiler &Compiler;
  std::mutex Mu;
  std::condition_variable HasWork;
  std::vector<Pending> Queue;
  bool Stopping = false;
  std::thread Drainer;
};

} // namespace serve
} // namespace ltp

#endif // LTP_SERVE_BATCHCOMPILER_H
