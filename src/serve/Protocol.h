//===- Protocol.h - ltp-serve wire protocol ---------------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol of the `ltp-serve` daemon: one
/// JSON object per line in each direction over a Unix-domain stream
/// socket. Requests name a kernel (or a schedule to replay) plus a
/// platform; responses carry the verified schedule and the paths of
/// ready-to-`dlopen` kernel shared objects in the content-addressed
/// store.
///
///   {"op":"optimize","kernel":"matmul","size":256,"arch":"6700"}
///   {"op":"optimize","kernel":"matmul",
///    "schedule":"split(i,it,ii,32); parallel(it);"}
///   {"op":"lint","kernel":"matmul","schedule":"reorder(i, j, k);"}
///   {"op":"stats"}  {"op":"metrics"}  {"op":"dump"}
///   {"op":"ping"}  {"op":"shutdown"}
///
/// Every response carries a server-minted `request_id`, the join key
/// across structured log lines, trace spans, provenance records and
/// flight-recorder digests for that request.
///
/// Requests are *canonicalized* before dedup keying: the key is the full
/// resolved request text — kernel, size, schedule text, score mode, NTI
/// and compile toggles, and the platform rendered through
/// archParamsToText (so `"arch":"6700"` and an inline `arch_text` with
/// identical parameters dedup onto one optimization).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SERVE_PROTOCOL_H
#define LTP_SERVE_PROTOCOL_H

#include "arch/ArchParams.h"
#include "support/ErrorOr.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ltp {
namespace serve {

/// One parsed request line.
struct Request {
  /// "optimize" (default), "lint", "stats", "metrics", "dump", "ping" or
  /// "shutdown". A lint request schedules like optimize (replaying
  /// `schedule` when present) but returns static diagnostics instead of
  /// compiled kernels; "metrics" returns the Prometheus exposition and
  /// "dump" the flight-recorder ring.
  std::string Op = "optimize";
  /// Client-chosen identifier echoed back verbatim (optional).
  std::string Id;
  /// Server-minted per-request ID (mintRequestId). Not a wire field —
  /// clients cannot set it; the protocol layer stamps it on arrival.
  std::string RequestId;
  /// Benchmark kernel name (allBenchmarks/extendedBenchmarks).
  std::string Kernel;
  /// Problem size; 0 = the kernel's container-scaled default.
  int64_t Size = 0;
  /// Optional textual schedule replayed (verified) instead of running
  /// the optimizer.
  std::string Schedule;
  /// Named platform: 5930k | 6700 | a15 | host (default host).
  std::string ArchName = "host";
  /// Inline platform description (ArchFile key=value text); when
  /// non-empty it overrides ArchName.
  std::string ArchText;
  /// Candidate scoring path: analytic | sim | auto (default auto).
  std::string ScoreModeText = "auto";
  /// Allow non-temporal stores (default true).
  bool EnableNTI = true;
  /// Also JIT-compile the scheduled pipeline into the shared kernel
  /// store and return the `.so` paths (default true).
  bool Compile = true;
};

/// Parses one request line. Unknown fields are an error (they are most
/// likely typos of known ones).
ErrorOr<Request> parseRequest(const std::string &Line);

/// Mints a process-unique request ID ("r-<pid>-<seq>"). Called by the
/// transport layer on every parsed request (and by the service for
/// requests that arrive without one, e.g. direct handle() calls in
/// tests and benches).
std::string mintRequestId();

/// Resolves the request's platform: ArchText when present, else the
/// named platform.
ErrorOr<ArchParams> resolveArch(const Request &Req);

/// The canonical dedup key of an optimize request against a resolved
/// platform: every semantically significant field, with the platform
/// rendered through archParamsToText so equivalent descriptions collide.
std::string canonicalKey(const Request &Req, const ArchParams &Arch);

/// 64-bit FNV-1a of \p Key as fixed-width hex — the short form echoed to
/// clients and used to name things in logs.
std::string keyHash(const std::string &Key);

/// How a request was satisfied relative to the dedup table.
enum class DedupOutcome {
  Miss,     ///< this request ran the optimization
  Inflight, ///< identical request was in flight; waited for its result
  Cached,   ///< identical request had already completed
};

const char *dedupOutcomeName(DedupOutcome O);

/// Error classification mirrored into the response `kind` field (and
/// aligned with ltp-opt's exit codes, so scripted callers classify
/// failures the same way against both surfaces).
enum class ErrorKind {
  None,
  BadRequest,      ///< malformed JSON / unknown kernel / bad field value
  IllegalSchedule, ///< schedule text rejected by parse or the verifier
  Internal,        ///< optimizer/JIT failure
};

const char *errorKindName(ErrorKind K);

/// One response line (before serialization).
struct Response {
  bool Ok = false;
  std::string Id;
  /// Server-minted ID of the request this answers (see Request).
  std::string RequestId;
  ErrorKind Kind = ErrorKind::None;
  std::string Error;
  std::string Kernel;
  std::string Class;       ///< classifier verdict (temporal/spatial/...)
  std::string Schedule;    ///< directive text of the final-stage schedule
  std::string Description; ///< optimizer summary ("temporal: ... +NTI")
  std::vector<std::string> SoPaths; ///< one per pipeline stage
  /// True when the request ran the lint pass; an empty DiagnosticsJson
  /// then means "clean" (the `diagnostics` array is emitted either way).
  bool LintRan = false;
  /// Pre-rendered diagnostic JSON objects (lint::diagnosticJson), kept as
  /// strings so the protocol layer stays decoupled from the lint library.
  std::vector<std::string> DiagnosticsJson;
  DedupOutcome Dedup = DedupOutcome::Miss;
  std::string KeyHash; ///< canonical-key hash (dedup debugging)
  double OptMillis = 0.0;
  double CompileMillis = 0.0;
  /// Per-stage wall times ("opt.stage0", "lint", "compile", ...) in
  /// execution order. Not serialized onto the wire; feeds the flight
  /// recorder and the slow-request log. Only the dedup owner carries
  /// them (duplicates did not run the stages).
  std::vector<std::pair<std::string, double>> StageMillis;
};

/// Renders \p R as one JSON line (no trailing newline).
std::string renderResponse(const Response &R);

} // namespace serve
} // namespace ltp

#endif // LTP_SERVE_PROTOCOL_H
