//===- OptimizerService.cpp - stateless optimization-as-a-service ---------===//

#include "serve/OptimizerService.h"

#include "analysis/Lint.h"
#include "benchmarks/PipelineRunner.h"
#include "core/Classifier.h"
#include "lang/Bounds.h"
#include "lang/ScheduleText.h"
#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "serve/Session.h"
#include "support/Format.h"

#include <chrono>

using namespace ltp;
using namespace ltp::serve;

namespace {

obs::Counter &requestsCounter() {
  static obs::Counter &C = obs::counter("serve.requests");
  return C;
}
obs::Counter &dedupHitCounter() {
  static obs::Counter &C = obs::counter("serve.dedup_hit");
  return C;
}
obs::Counter &dedupMissCounter() {
  static obs::Counter &C = obs::counter("serve.dedup_miss");
  return C;
}
obs::Counter &dedupInflightCounter() {
  static obs::Counter &C = obs::counter("serve.dedup_inflight");
  return C;
}
obs::Counter &dedupCachedCounter() {
  static obs::Counter &C = obs::counter("serve.dedup_cached");
  return C;
}
obs::Counter &errorsCounter() {
  static obs::Counter &C = obs::counter("serve.errors");
  return C;
}

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void observeOptMillis(double Millis) {
  if (!obs::metricsEnabled())
    return;
  static obs::Histogram &H = obs::histogram("serve.opt_ms");
  H.observe(Millis);
}

void observeCompileMillis(double Millis) {
  if (!obs::metricsEnabled())
    return;
  static obs::Histogram &H = obs::histogram("serve.compile_ms");
  H.observe(Millis);
}

/// Compute-stage index of \p F (last update for reductions, -1 = pure).
int scheduleStageIndex(const Func &F) {
  return F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
}

Response badRequest(const Request &Req, const std::string &Error) {
  Response R;
  R.Ok = false;
  R.Id = Req.Id;
  R.Kind = ErrorKind::BadRequest;
  R.Error = Error;
  errorsCounter().add();
  return R;
}

} // namespace

OptimizerService::OptimizerService(ServiceOptions Opts)
    : Opts(std::move(Opts)), Batcher(Compiler) {}

OptimizerService::~OptimizerService() = default;

size_t OptimizerService::dedupTableSize() {
  std::lock_guard<std::mutex> Lock(TableMu);
  return Table.size();
}

Response OptimizerService::handle(const Request &Req) {
  auto Start = std::chrono::steady_clock::now();
  Request RidReq = Req;
  if (RidReq.RequestId.empty())
    RidReq.RequestId = mintRequestId();
  // Everything recorded on this thread until the response is final —
  // spans, log lines, provenance decisions — joins on this ID.
  obs::RequestIdScope RidScope(RidReq.RequestId);
  obs::ScopedSpan Span("serve.request", [&] { return RidReq.Kernel; });
  requestsCounter().add();

  Response R = handleKeyed(RidReq);
  finishRequest(RidReq, R, millisSince(Start));
  return R;
}

Response OptimizerService::handleKeyed(const Request &Req) {
  if (Req.Op != "optimize" && Req.Op != "lint")
    return badRequest(Req, "op '" + Req.Op + "' is not servable here");

  // Normalize the request against daemon-wide policy before keying, so
  // the dedup table never splits on fields the policy overrides. Lint
  // requests never compile, so their keys collapse on that field too.
  Request EReq = Req;
  if (!Opts.ForceScoreMode.empty())
    EReq.ScoreModeText = Opts.ForceScoreMode;
  if (Opts.DisableCompile || EReq.Op == "lint")
    EReq.Compile = false;

  model::ScoreMode Mode = model::ScoreMode::Auto;
  if (!model::parseScoreMode(EReq.ScoreModeText.c_str(), Mode))
    return badRequest(Req, "bad score_mode '" + EReq.ScoreModeText +
                               "' (want analytic|sim|auto)");
  if (!findBenchmark(EReq.Kernel))
    return badRequest(Req, "unknown kernel '" + EReq.Kernel + "'");

  ErrorOr<ArchParams> Arch = resolveArch(EReq);
  if (!Arch)
    return badRequest(Req, Arch.getError());

  // Size participates in the key post-normalization: an explicit size
  // equal to the default dedups with a defaulted request.
  if (EReq.Size == 0)
    EReq.Size = findBenchmark(EReq.Kernel)->DefaultSize;

  const std::string Key = canonicalKey(EReq, *Arch);

  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(TableMu);
    std::shared_ptr<Entry> &Slot = Table[Key];
    if (!Slot) {
      Slot = std::make_shared<Entry>();
      Owner = true;
    }
    E = Slot;
    if (obs::metricsEnabled()) {
      static obs::Gauge &TableGauge = obs::gauge("serve.dedup_table_size");
      TableGauge.set(static_cast<int64_t>(Table.size()));
    }
  }

  if (Owner) {
    dedupMissCounter().add();
    Response R = runSession(EReq, *Arch, Key);
    if (!R.Ok)
      errorsCounter().add();
    {
      std::lock_guard<std::mutex> Lock(E->Mu);
      E->Template = R;
      E->Done = true;
    }
    E->Ready.notify_all();
    R.Id = Req.Id;
    R.Dedup = DedupOutcome::Miss;
    return R;
  }

  // Duplicate: piggyback on the owner. Errors are published too — the
  // pipeline is deterministic, so re-running an illegal schedule for
  // every duplicate would only burn optimizer time to fail identically.
  DedupOutcome Outcome;
  Response R;
  {
    std::unique_lock<std::mutex> Lock(E->Mu);
    Outcome = E->Done ? DedupOutcome::Cached : DedupOutcome::Inflight;
    E->Ready.wait(Lock, [&] { return E->Done; });
    R = E->Template;
  }
  dedupHitCounter().add();
  (Outcome == DedupOutcome::Cached ? dedupCachedCounter()
                                   : dedupInflightCounter())
      .add();
  if (!R.Ok)
    errorsCounter().add();
  R.Id = Req.Id;
  R.Dedup = Outcome;
  // The owner's stage timings describe *its* run, not this duplicate's
  // table lookup — drop them so digests stay truthful.
  R.StageMillis.clear();
  return R;
}

void OptimizerService::finishRequest(const Request &Req, Response &R,
                                     double TotalMillis) {
  R.RequestId = Req.RequestId;

  if (obs::metricsEnabled()) {
    static obs::Histogram &RequestHist = obs::histogram("serve.request_ms");
    RequestHist.observe(TotalMillis);
  }

  obs::RequestDigest D;
  D.RequestId = Req.RequestId;
  D.Op = Req.Op;
  D.Kernel = Req.Kernel;
  D.KeyHash = R.KeyHash;
  if (!R.KeyHash.empty())
    D.Dedup = dedupOutcomeName(R.Dedup);
  D.Ok = R.Ok;
  D.Error = R.Error;
  if (!R.SoPaths.empty())
    D.SoPath = R.SoPaths.front();
  D.TotalMillis = TotalMillis;
  D.OptMillis = R.OptMillis;
  D.CompileMillis = R.CompileMillis;
  D.UnixMillis = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count();
  D.StageMillis = R.StageMillis;
  obs::flightRecorder().record(std::move(D));

  if (obs::logEnabled(obs::LogLevel::Info))
    obs::logEvent(obs::LogLevel::Info, "serve", "request",
                  {{"op", Req.Op},
                   {"kernel", Req.Kernel},
                   {"ok", R.Ok},
                   {"dedup", dedupOutcomeName(R.Dedup)},
                   {"key", R.KeyHash},
                   {"total_ms", TotalMillis}});

  double SlowMillis = obs::slowRequestThresholdMs();
  if (SlowMillis > 0 && TotalMillis >= SlowMillis &&
      obs::logEnabled(obs::LogLevel::Warn)) {
    // The request's span tree, flattened: per-stage wall times plus the
    // optimizer/compile splits — enough to see where the time went
    // without tracing having been on.
    std::string Stages = "{";
    for (size_t I = 0; I != R.StageMillis.size(); ++I)
      Stages += strFormat("%s\"%s\": %.4f", I ? ", " : "",
                          obs::jsonEscape(R.StageMillis[I].first).c_str(),
                          R.StageMillis[I].second);
    Stages += "}";
    obs::logEvent(obs::LogLevel::Warn, "serve", "slow request",
                  {{"op", Req.Op},
                   {"kernel", Req.Kernel},
                   {"dedup", dedupOutcomeName(R.Dedup)},
                   {"total_ms", TotalMillis},
                   {"opt_ms", R.OptMillis},
                   {"compile_ms", R.CompileMillis},
                   {"threshold_ms", SlowMillis},
                   obs::LogField::raw("stages", Stages)});
  }
}

Response OptimizerService::runSession(const Request &Req,
                                      const ArchParams &Arch,
                                      const std::string &Key) {
  Session Sess;
  Sess.Req = Req;
  Sess.Arch = Arch;
  model::parseScoreMode(Req.ScoreModeText.c_str(), Sess.Mode);
  Sess.Resp.Kernel = Req.Kernel;
  Sess.Resp.KeyHash = keyHash(Key);

  const BenchmarkDef *Def = findBenchmark(Req.Kernel);
  Sess.Instance = Def->Create(Req.Size);

  auto OptStart = std::chrono::steady_clock::now();
  if (!scheduleSession(Sess)) {
    Sess.Resp.OptMillis = millisSince(OptStart);
    observeOptMillis(Sess.Resp.OptMillis);
    return Sess.Resp;
  }

  if (Req.Op == "lint") {
    // Static diagnostics over every stage's schedule (the one just
    // replayed or the one the optimizer just chose). Findings do not
    // fail the response: an empty `diagnostics` array means clean.
    auto LintStart = std::chrono::steady_clock::now();
    lint::LintOptions LO;
    LO.Score = Sess.Mode;
    for (size_t S = 0; S != Sess.Instance.Stages.size(); ++S) {
      Func &F = Sess.Instance.Stages[S];
      lint::LintReport Report =
          lint::lintStageSchedule(F, scheduleStageIndex(F),
                                  Sess.Instance.StageExtents[S], Sess.Arch, LO);
      for (const lint::Diagnostic &D : Report.Diagnostics)
        Sess.Resp.DiagnosticsJson.push_back(
            lint::diagnosticJson(D, static_cast<int>(S)));
    }
    Sess.Resp.StageMillis.emplace_back("lint", millisSince(LintStart));
    Sess.Resp.LintRan = true;
    Sess.Resp.OptMillis = millisSince(OptStart);
    observeOptMillis(Sess.Resp.OptMillis);
    Sess.Resp.Ok = true;
    return Sess.Resp;
  }
  Sess.Resp.OptMillis = millisSince(OptStart);
  observeOptMillis(Sess.Resp.OptMillis);

  if (Req.Compile && !compileSession(Sess))
    return Sess.Resp;

  Sess.Resp.Ok = true;
  return Sess.Resp;
}

bool OptimizerService::scheduleSession(Session &Sess) {
  Response &R = Sess.Resp;
  if (!Sess.Req.Schedule.empty()) {
    // Replay the client's schedule (verified) on the compute stage of
    // the last pipeline stage, mirroring `ltp-opt --schedule`.
    auto ReplayStart = std::chrono::steady_clock::now();
    Func &F = Sess.Instance.Stages.back();
    F.clearSchedules();
    int Stage = scheduleStageIndex(F);
    auto Applied = applyVerifiedScheduleText(
        F, Stage, Sess.Req.Schedule, Sess.Instance.StageExtents.back());
    R.StageMillis.emplace_back("schedule.replay", millisSince(ReplayStart));
    if (!Applied) {
      R.Kind = ErrorKind::IllegalSchedule;
      R.Error = Applied.getError();
      return false;
    }
    R.Schedule = printSchedule(F, Stage);
    R.Description = "user schedule (verified)";
    return true;
  }

  OptimizerOptions Options;
  Options.EnableNonTemporal = Sess.Req.EnableNTI;
  Options.Temporal.Score = Sess.Mode;
  for (size_t S = 0; S != Sess.Instance.Stages.size(); ++S) {
    auto StageStart = std::chrono::steady_clock::now();
    Sess.StageResults.push_back(optimize(Sess.Instance.Stages[S],
                                         Sess.Instance.StageExtents[S],
                                         Sess.Arch, Options));
    R.StageMillis.emplace_back(strFormat("opt.stage%zu", S),
                               millisSince(StageStart));
  }

  const OptimizationResult &Last = Sess.StageResults.back();
  R.Class = statementClassName(Last.Class.Kind);
  R.Description = Last.Description;
  R.Schedule = printSchedule(Sess.Instance.Stages.back(),
                             scheduleStageIndex(Sess.Instance.Stages.back()));
  return true;
}

bool OptimizerService::compileSession(Session &Sess) {
  Response &R = Sess.Resp;
  if (!jitAvailable()) {
    R.Kind = ErrorKind::Internal;
    R.Error = "no host C compiler available for kernel compilation";
    return false;
  }

  auto LowerStart = std::chrono::steady_clock::now();
  Sess.Lowered = lowerPipeline(Sess.Instance);
  for (const ir::StmtPtr &S : Sess.Lowered) {
    std::string Diag = validateAccesses(S, Sess.Instance.Buffers);
    if (!Diag.empty()) {
      R.Kind = ErrorKind::Internal;
      R.Error = "schedule accesses out of bounds: " + Diag;
      return false;
    }
  }
  R.StageMillis.emplace_back("lower", millisSince(LowerStart));

  std::vector<BufferBinding> Signature;
  for (const auto &[Name, Ref] : Sess.Instance.Buffers)
    Signature.push_back(BufferBinding::fromRef(Name, Ref));

  CodeGenOptions CG;
  CG.EnableNonTemporal = Sess.Req.EnableNTI;

  std::vector<CompileJob> Jobs;
  Jobs.reserve(Sess.Lowered.size());
  for (const ir::StmtPtr &S : Sess.Lowered)
    Jobs.push_back(CompileJob{S, Signature, CG});

  auto CompileStart = std::chrono::steady_clock::now();
  BatchCompiler::BatchResult Results =
      Batcher.submit(std::move(Jobs), Sess.Req.RequestId).get();
  R.CompileMillis = millisSince(CompileStart);
  R.StageMillis.emplace_back("compile", R.CompileMillis);
  observeCompileMillis(R.CompileMillis);

  for (ErrorOr<CompiledKernel> &K : Results) {
    if (!K) {
      R.Kind = ErrorKind::Internal;
      R.Error = "kernel compilation failed: " + K.getError();
      R.SoPaths.clear();
      return false;
    }
    // The path stays valid for the daemon's lifetime: the JIT memo
    // shard retains the loaded module, so even non-disk-cache modules
    // are not unlinked while the service lives.
    R.SoPaths.push_back(K->sharedObjectPath());
  }
  return true;
}
