//===- Session.h - per-request optimization session -------------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All state materialized for one serve request that missed the dedup
/// table: the benchmark instance (buffers, stages), the plans chosen for
/// each stage, the lowered statements, and the response under
/// construction. The OptimizerService itself is stateless across
/// requests apart from its caches — everything mutable during an
/// optimization lives here, so concurrent sessions never share Funcs or
/// buffers.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SERVE_SESSION_H
#define LTP_SERVE_SESSION_H

#include "arch/ArchParams.h"
#include "benchmarks/Benchmarks.h"
#include "core/Optimizer.h"
#include "model/ScoreMode.h"
#include "serve/Protocol.h"

#include <vector>

namespace ltp {
namespace serve {

/// Per-request mutable state (see file comment). Created by the service
/// on a dedup miss, destroyed when the response template is published;
/// only the Response survives into the result cache.
struct Session {
  Request Req;
  ArchParams Arch;
  model::ScoreMode Mode = model::ScoreMode::Auto;
  /// The session's own kernel instance; stages are scheduled in place.
  BenchmarkInstance Instance;
  /// One optimizer result per stage (empty when replaying a user
  /// schedule).
  std::vector<OptimizationResult> StageResults;
  /// Lowered statements, one per stage (filled when compiling).
  std::vector<ir::StmtPtr> Lowered;
  /// The response template being built (Id/Dedup filled per request by
  /// the service).
  Response Resp;
};

} // namespace serve
} // namespace ltp

#endif // LTP_SERVE_SESSION_H
