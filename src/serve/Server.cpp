//===- Server.cpp - Unix-domain NDJSON request server ---------------------===//

#include "serve/Server.h"

#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "support/Format.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ltp;
using namespace ltp::serve;

namespace {

obs::Counter &connectionsCounter() {
  static obs::Counter &C = obs::counter("serve.connections");
  return C;
}

/// Writes all of \p Data (plus newline) to \p Fd; false on error.
bool writeLine(int Fd, const std::string &Data) {
  std::string Line = Data + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::string statsJson() {
  std::string Out = "{\"ok\": true, \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : obs::counterSnapshot()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += strFormat("\"%s\": %lld", Name.c_str(),
                     static_cast<long long>(Value));
  }
  Out += "}, \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : obs::gaugeSnapshot()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += strFormat("\"%s\": %lld", Name.c_str(),
                     static_cast<long long>(Value));
  }
  Out += "}}";
  return Out;
}

/// Common prefix of the inline-op responses: ok + echoed id + the
/// request ID minted for this line.
std::string responseHead(const Request &Req) {
  std::string Out = "{\"ok\": true";
  if (!Req.Id.empty())
    Out += ", \"id\": \"" + obs::jsonEscape(Req.Id) + "\"";
  if (!Req.RequestId.empty())
    Out += ", \"request_id\": \"" + obs::jsonEscape(Req.RequestId) + "\"";
  return Out;
}

std::string metricsJson(const Request &Req) {
  // The exposition text rides inside the NDJSON envelope as one escaped
  // string field, keeping the wire protocol uniformly line-JSON; the
  // client's --metrics flag unescapes it back to scrapeable text.
  return responseHead(Req) + ", \"metrics\": \"" +
         obs::jsonEscape(obs::renderPrometheusText()) + "\"}";
}

std::string dumpJson(const Request &Req) {
  obs::FlightRecorder &Recorder = obs::flightRecorder();
  return responseHead(Req) +
         strFormat(", \"flight_recorder\": %s, \"capacity\": %zu, "
                   "\"recorded\": %llu}",
                   Recorder.requestsJsonArray().c_str(), Recorder.capacity(),
                   static_cast<unsigned long long>(
                       Recorder.totalRecorded()));
}

} // namespace

Server::Server(std::string SocketPath, ServiceOptions Opts)
    : SocketPath(std::move(SocketPath)), Service(std::move(Opts)) {}

Server::~Server() { teardown(); }

bool Server::start(std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  ::unlink(SocketPath.c_str()); // stale socket from a dead daemon
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind " + SocketPath);
  if (::listen(ListenFd, 128) < 0)
    return Fail("listen");

  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // Closed listening socket (teardown) or fatal error: stop.
      return;
    }
    if (StopFlag.load()) {
      ::close(Fd);
      return;
    }
    connectionsCounter().add();
    std::lock_guard<std::mutex> Lock(ConnMu);
    OpenFds.push_back(Fd);
    Handlers.emplace_back([this, Fd] { handleConnection(Fd); });
  }
}

void Server::handleConnection(int Fd) {
  // Live-connection gauge updates unconditionally (not gated on
  // metricsEnabled) so the inc/dec pairing can never be split by a
  // mid-connection toggle.
  obs::Gauge &Live = obs::gauge("serve.live_connections");
  Live.add(1);
  if (obs::logEnabled(obs::LogLevel::Debug))
    obs::logEvent(obs::LogLevel::Debug, "server", "connection open",
                  {{"fd", static_cast<int64_t>(Fd)}});
  std::string Buffer;
  char Chunk[4096];
  bool Open = true;
  while (Open && !StopFlag.load()) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));

    size_t Pos;
    while (Open && (Pos = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Pos);
      Buffer.erase(0, Pos + 1);
      if (Line.empty())
        continue;

      ErrorOr<Request> Req = parseRequest(Line);
      if (!Req) {
        Response R;
        R.Kind = ErrorKind::BadRequest;
        R.Error = Req.getError();
        obs::counter("serve.errors").add();
        if (obs::logEnabled(obs::LogLevel::Warn))
          obs::logEvent(obs::LogLevel::Warn, "server", "bad request",
                        {{"error", Req.getError()}});
        Open = writeLine(Fd, renderResponse(R));
        continue;
      }

      // Mint the per-request ID here, at the protocol boundary, so
      // every downstream log line, span, provenance record, and flight
      // digest for this line shares one join key.
      Req->RequestId = mintRequestId();
      obs::RequestIdScope RidScope(Req->RequestId);

      if (Req->Op == "ping") {
        std::string Pong = responseHead(*Req);
        Pong += ", \"pong\": true}";
        Open = writeLine(Fd, Pong);
      } else if (Req->Op == "stats") {
        Open = writeLine(Fd, statsJson());
      } else if (Req->Op == "metrics") {
        Open = writeLine(Fd, metricsJson(*Req));
      } else if (Req->Op == "dump") {
        Open = writeLine(Fd, dumpJson(*Req));
      } else if (Req->Op == "shutdown") {
        writeLine(Fd, "{\"ok\": true, \"stopping\": true}");
        requestStop();
        Open = false;
      } else {
        Open = writeLine(Fd, renderResponse(Service.handle(*Req)));
      }
    }
  }
  {
    // Deregister before closing so teardown never shutdown()s a
    // recycled descriptor number.
    std::lock_guard<std::mutex> Lock(ConnMu);
    OpenFds.erase(std::remove(OpenFds.begin(), OpenFds.end(), Fd),
                  OpenFds.end());
  }
  ::close(Fd);
  Live.add(-1);
  if (obs::logEnabled(obs::LogLevel::Debug))
    obs::logEvent(obs::LogLevel::Debug, "server", "connection closed",
                  {{"fd", static_cast<int64_t>(Fd)}});
}

void Server::requestStop() {
  StopFlag.store(true);
  StopCv.notify_all();
}

void Server::wait(const std::atomic<bool> *SignalFlag,
                  const std::function<void()> &Poll) {
  std::unique_lock<std::mutex> Lock(StopMu);
  for (;;) {
    if (StopFlag.load())
      break;
    if (SignalFlag && SignalFlag->load()) {
      StopFlag.store(true);
      break;
    }
    if (Poll)
      Poll();
    StopCv.wait_for(Lock, std::chrono::milliseconds(100));
  }
  Lock.unlock();
  teardown();
}

void Server::teardown() {
  StopFlag.store(true);
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (TornDown)
      return;
    TornDown = true;
  }
  if (ListenFd >= 0) {
    // shutdown() wakes the blocked accept(); close() alone does not on
    // all platforms.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : OpenFds)
      ::shutdown(Fd, SHUT_RDWR); // unblocks handlers stuck in read()
    OpenFds.clear();
    ToJoin.swap(Handlers);
  }
  for (std::thread &T : ToJoin)
    T.join();
  ::unlink(SocketPath.c_str());
}
