//===- OptimizerService.h - stateless optimization-as-a-service -*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-side optimization engine behind `tools/ltp-serve`: a
/// thread-safe, stateless-per-request service that turns canonicalized
/// requests into verified schedules and ready-to-`dlopen` kernels.
///
/// Layering (top to bottom):
///
///   handle(Request)
///     └─ canonicalize → dedup table: identical kernel+platform+mode
///        requests — in flight *or* completed — share one optimization
///        and one compile (`serve.dedup.{miss,inflight,cached}`)
///     └─ Session (per-request state): materialize instance, plan +
///        apply schedules (core planStage/applyPlan), lower
///     └─ BatchCompiler: cross-request compileMany batches on the
///        process thread pool
///     └─ JITCompiler: sharded in-process memo over the flock-guarded
///        content-addressed `.so` disk cache — the shared kernel store
///
/// The in-memory result cache is the dedup table itself: completed
/// entries stay resident, so a warm hit costs one map lookup plus
/// response serialization (no optimizer, no JIT, no disk).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_SERVE_OPTIMIZERSERVICE_H
#define LTP_SERVE_OPTIMIZERSERVICE_H

#include "jit/JIT.h"
#include "serve/BatchCompiler.h"
#include "serve/Protocol.h"

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ltp {
namespace serve {

struct Session;

/// Service configuration (daemon flags).
struct ServiceOptions {
  /// Force a score mode on every request ("" = per-request field).
  std::string ForceScoreMode;
  /// Globally disable kernel compilation (schedule-only service).
  bool DisableCompile = false;
};

/// See file comment. One instance per daemon; handle() is called
/// concurrently from every connection handler.
class OptimizerService {
public:
  explicit OptimizerService(ServiceOptions Opts = {});
  ~OptimizerService();

  OptimizerService(const OptimizerService &) = delete;
  OptimizerService &operator=(const OptimizerService &) = delete;

  /// Serves one optimize request (thread-safe, blocking). Mints a
  /// request ID when the transport layer did not, binds it to the
  /// handling thread (logs/spans/provenance), and records a
  /// flight-recorder digest for every outcome.
  Response handle(const Request &Req);

  /// The shared kernel store underneath (tests and stats).
  JITCompiler &compiler() { return Compiler; }

  /// Completed + in-flight entries in the dedup table.
  size_t dedupTableSize();

private:
  /// One dedup-table entry: the first request with a given canonical key
  /// owns it and computes; duplicates wait on Ready, then copy the
  /// published response template.
  struct Entry {
    std::mutex Mu;
    std::condition_variable Ready;
    bool Done = false;
    Response Template;
  };

  /// Dedup lookup + owner/duplicate resolution (the body of handle()
  /// minus per-request observability).
  Response handleKeyed(const Request &Req);

  /// Per-request epilogue: stamps the request ID onto \p R, observes the
  /// latency histogram, records the flight-recorder digest, and emits
  /// the structured request / slow-request log lines.
  void finishRequest(const Request &Req, Response &R, double TotalMillis);

  /// Runs a full per-request session (dedup miss path); returns the
  /// response template.
  Response runSession(const Request &Req, const ArchParams &Arch,
                      const std::string &Key);

  /// Schedules every stage of the session's instance (optimizer search
  /// or verified user-schedule replay). Returns false after filling the
  /// error fields of the session response.
  bool scheduleSession(Session &Sess);

  /// Lowers and compiles the scheduled session through the batch
  /// pipeline, filling SoPaths. Returns false on compile failure.
  bool compileSession(Session &Sess);

  ServiceOptions Opts;
  JITCompiler Compiler;
  BatchCompiler Batcher;
  std::mutex TableMu;
  std::map<std::string, std::shared_ptr<Entry>> Table;
};

} // namespace serve
} // namespace ltp

#endif // LTP_SERVE_OPTIMIZERSERVICE_H
