//===- MissModel.h - closed-form per-level miss prediction ------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts absolute L1/L2 demand-miss counts for a *scheduled* affine
/// loop nest directly from the access functions and the ArchParams
/// prefetcher description — no trace replay. This generalizes the
/// paper's Eq. 5 / Eq. 10 from the temporal optimizer's two reuse pivots
/// to an arbitrary nest, which is what the autotuner needs to rank
/// randomly drawn schedules without compiling or simulating them.
///
/// Model (per cache level L, per reuse group g of uniformly generated
/// references):
///
///  1. Traversal-ordered fresh sweep: walk the group's moving loops
///     inside-out tracking the contiguous byte range each stream
///     instance covers. An advance adjacent to the covered range
///     concatenates (the next-line prefetcher bridges the crossing, via
///     L1 residency of the in-between footprint when several streams
///     interleave); any other advance multiplies the number of stream
///     heads. L1 cold misses = stream heads; at the L2 the heads form a
///     constant-stride stream the per-4KB-page streamer covers after ~3
///     training misses per page when the stride fits its window.
///  2. Set-aware residency: a prefix of the nest counts as resident at L
///     when its line-granular footprint fits 7/8 of L's capacity AND no
///     group's run segments concentrate into fewer sets than its lines
///     need ways for (gcd of the segment line stride with the set count —
///     the power-of-two-stride conflict case of a transposed tile).
///  3. Outer-loop replay: each loop outside the resident prefix
///     multiplies the misses by its trip count when it advances the
///     group's index — or when the prefix through it is not resident at
///     L (the group gets evicted between iterations) — and by 1
///     otherwise (the Eq. 5/10 pivot collapse, applied at every level).
///
/// Applicability is checked, never assumed: non-affine subscripts,
/// predicated (data-dependent) domains, non-unit strides along the
/// contiguous dimension, coupled subscripts, fused loops, unknown buffer
/// shapes, and sub-line strided traversals whose revisit window is not
/// L1-resident (column-major walks, conflict-prone tile strides) all
/// return Analytic=false with a reason, and the caller falls back to the
/// AccessProgram simulator (counted in `model.predict.fallback`).
/// AnalyticModelTest pins the prediction against the simulator across
/// the kernel suite and randomized schedules within a pinned tolerance.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_MISSMODEL_H
#define LTP_MODEL_MISSMODEL_H

#include "arch/ArchParams.h"
#include "core/AccessInfo.h"
#include "lang/Func.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ltp {
namespace model {

/// One loop of a scheduled nest, innermost first. A split loop
/// contributes two entries over the same origin variable: the inner with
/// (Trip=factor, Stride=1) and the outer with (Trip=ceil(extent/factor),
/// Stride=factor).
struct LoopDim {
  std::string OriginVar;
  int64_t Trip = 1;
  int64_t Stride = 1;
};

/// Element strides per dimension for each buffer (BufferRef::Strides);
/// the streamer model needs the real row stride in memory.
using BufferStrides = std::map<std::string, std::vector<int64_t>>;

struct MissPrediction {
  /// True when the closed form applied; false => use the simulator.
  bool Analytic = false;
  /// Human-readable reason when Analytic is false.
  std::string WhyNot;
  /// Predicted demand misses per level (valid when Analytic).
  double L1Misses = 0.0;
  double L2Misses = 0.0;
};

/// Reconstructs the scheduled nest of stage \p StageIndex of \p F by
/// replaying its split/reorder/unroll-jam directives over the analyzed
/// loops. Returns false (with \p WhyNot set) on fuse directives or
/// unknown loop names.
bool scheduledNest(const Func &F, int StageIndex,
                   const StageAccessInfo &Info, std::vector<LoopDim> &Out,
                   std::string *WhyNot = nullptr);

/// Predicts per-level demand misses for \p Info executed under \p Nest
/// on \p Arch. \p Strides supplies each buffer's element strides;
/// \p NonTemporalOutput marks the output store as streaming (bypasses
/// the hierarchy, contributing no misses).
MissPrediction predictMisses(const StageAccessInfo &Info,
                             const std::vector<LoopDim> &Nest,
                             const ArchParams &Arch,
                             const BufferStrides &Strides,
                             bool NonTemporalOutput = false);

} // namespace model
} // namespace ltp

#endif // LTP_MODEL_MISSMODEL_H
