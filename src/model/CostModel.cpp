//===- CostModel.cpp - prefetch-aware cache cost model (Eqs. 1-12) -------===//

#include "model/CostModel.h"

#include <algorithm>
#include <cassert>

using namespace ltp;

int64_t ltp::interTrip(int64_t Extent, int64_t Tile) {
  assert(Extent > 0 && Tile > 0 && "trip count of an empty loop");
  return (Extent + Tile - 1) / Tile;
}

int64_t ltp::footprintDimExtent(const AffineIndex &Index,
                                const TileMap &Tiles) {
  if (!Index.IsAffine) {
    // Unknown structure: assume the whole dimension is touched once per
    // point; treat as extent 1 so the caller degrades gracefully.
    return 1;
  }
  int64_t Extent = 1;
  for (const auto &[Var, Coeff] : Index.Coeffs) {
    auto It = Tiles.find(Var);
    if (It == Tiles.end())
      continue;
    Extent += std::llabs(Coeff) * (It->second - 1);
  }
  return Extent;
}

int64_t ltp::footprintSegments(const ArrayAccess &Access,
                               const TileMap &Tiles) {
  assert(!Access.Index.empty() && "access has no dimensions");
  int64_t Segments = 1;
  for (size_t D = 1; D != Access.Index.size(); ++D)
    Segments *= footprintDimExtent(Access.Index[D], Tiles);
  return Segments;
}

int64_t ltp::footprintElements(const ArrayAccess &Access,
                               const TileMap &Tiles) {
  int64_t Elements = 1;
  for (const AffineIndex &Index : Access.Index)
    Elements *= footprintDimExtent(Index, Tiles);
  return Elements;
}

int64_t ltp::workingSetElements(const StageAccessInfo &Info,
                                const TileMap &Tiles) {
  int64_t Total = 0;
  for (const ArrayAccess &Access : Info.Accesses)
    Total += footprintElements(Access, Tiles);
  return Total;
}

namespace {

/// True when \p Access's index references \p Var with non-zero
/// coefficient in any dimension.
bool accessUsesVar(const ArrayAccess &Access, const std::string &Var) {
  for (const AffineIndex &Index : Access.Index)
    if (Index.Coeffs.contains(Var) && Index.Coeffs.at(Var) != 0)
      return true;
  return false;
}

/// Product of inter-tile trip counts over all loops (the number of tiles).
double numTiles(const StageAccessInfo &Info, const TileMap &Tiles) {
  double N = 1.0;
  for (const LoopInfo &Loop : Info.Loops) {
    auto It = Tiles.find(Loop.Name);
    assert(It != Tiles.end() && "tile map must cover every loop");
    N *= static_cast<double>(interTrip(Loop.Extent, It->second));
  }
  return N;
}

int64_t loopExtent(const StageAccessInfo &Info, const std::string &Var) {
  for (const LoopInfo &Loop : Info.Loops)
    if (Loop.Name == Var)
      return Loop.Extent;
  assert(false && "unknown loop variable");
  return 1;
}

/// Lines covered by a footprint (prefetch-unaware cold misses): the
/// column dimension contributes ceil(extent / lc) lines per segment.
int64_t footprintLines(const ArrayAccess &Access, const TileMap &Tiles,
                       int64_t Lc) {
  assert(!Access.Index.empty() && "access has no dimensions");
  int64_t ColumnExtent = footprintDimExtent(Access.Index.front(), Tiles);
  int64_t LinesPerSegment = (ColumnExtent + Lc - 1) / Lc;
  return LinesPerSegment * footprintSegments(Access, Tiles);
}

/// Shared structure of Eq. 5 and Eq. 10 with a pluggable per-footprint
/// miss function: per access, `T_pivot` fresh footprints when the pivot
/// loop indexes the access, else one reused footprint; times the trips of
/// the remaining enclosing loops.
template <typename MissFn>
double estimateLevelMisses(const StageAccessInfo &Info, const TileMap &Tiles,
                           const std::string &PivotVar, bool PivotIsIntra,
                           MissFn Misses) {
  // Footprint loops: for the L1 estimate (pivot intra), the footprint is
  // over the intra-tile loops *excluding* the pivot; for the L2 estimate
  // (pivot inter), the footprint is the whole tile.
  TileMap FootprintTiles = Tiles;
  if (PivotIsIntra)
    FootprintTiles[PivotVar] = 1;

  double PerTile = 0.0;
  int64_t PivotIterations =
      PivotIsIntra ? Tiles.at(PivotVar)
                   : interTrip(loopExtent(Info, PivotVar), Tiles.at(PivotVar));
  for (const ArrayAccess &Access : Info.Accesses) {
    double FootprintMisses =
        static_cast<double>(Misses(Access, FootprintTiles));
    if (accessUsesVar(Access, PivotVar))
      PerTile += static_cast<double>(PivotIterations) * FootprintMisses;
    else
      PerTile += FootprintMisses;
  }

  // Remaining enclosing loops: every inter-tile trip except the pivot's
  // own contribution, which is already accounted for above.
  double Enclosing = numTiles(Info, Tiles);
  if (!PivotIsIntra)
    Enclosing /=
        static_cast<double>(interTrip(loopExtent(Info, PivotVar),
                                      Tiles.at(PivotVar)));
  return PerTile * Enclosing;
}

} // namespace

double ltp::estimateL1Misses(const StageAccessInfo &Info,
                             const TileMap &Tiles,
                             const std::string &OuterIntraVar) {
  return estimateLevelMisses(
      Info, Tiles, OuterIntraVar, /*PivotIsIntra=*/true,
      [](const ArrayAccess &A, const TileMap &T) {
        return footprintSegments(A, T);
      });
}

double ltp::estimateL2Misses(const StageAccessInfo &Info,
                             const TileMap &Tiles,
                             const std::string &InnerInterVar) {
  return estimateLevelMisses(
      Info, Tiles, InnerInterVar, /*PivotIsIntra=*/false,
      [](const ArrayAccess &A, const TileMap &T) {
        return footprintSegments(A, T);
      });
}

double ltp::totalCost(const StageAccessInfo &Info, const TileMap &Tiles,
                      const std::string &OuterIntraVar,
                      const std::string &InnerInterVar,
                      const ArchParams &Arch) {
  return Arch.A2 * estimateL1Misses(Info, Tiles, OuterIntraVar) +
         Arch.A3 * estimateL2Misses(Info, Tiles, InnerInterVar);
}

double ltp::orderCost(const StageAccessInfo &Info, const TileMap &Tiles,
                      const std::vector<std::string> &IntraOrder,
                      const std::vector<std::string> &InterOrder) {
  // Build the full nest, innermost first: intra block then inter block.
  struct NestLoop {
    std::string Var;
    bool IsIntra;
    double Trip;
  };
  std::vector<NestLoop> Nest;
  for (const std::string &Var : IntraOrder)
    Nest.push_back({Var, true, static_cast<double>(Tiles.at(Var))});
  for (const std::string &Var : InterOrder)
    Nest.push_back({Var, false,
                    static_cast<double>(interTrip(loopExtent(Info, Var),
                                                  Tiles.at(Var)))});

  double Total = 0.0;
  for (const std::string &Var : IntraOrder) {
    // Distance between the intra loop and its inter partner: the product
    // of the trip counts of the loops strictly between them.
    size_t IntraPos = Nest.size(), InterPos = Nest.size();
    for (size_t P = 0; P != Nest.size(); ++P) {
      if (Nest[P].Var != Var)
        continue;
      if (Nest[P].IsIntra)
        IntraPos = P;
      else
        InterPos = P;
    }
    if (InterPos == Nest.size())
      continue; // untiled loop: no inter incarnation, no distance
    assert(IntraPos < InterPos && "intra loop must be inside its inter loop");
    double Distance = 1.0;
    for (size_t P = IntraPos + 1; P != InterPos; ++P)
      Distance *= Nest[P].Trip;
    Total += Distance;
  }
  return Total;
}

double ltp::estimateL1MissesNoPrefetch(const StageAccessInfo &Info,
                                       const TileMap &Tiles,
                                       const std::string &OuterIntraVar,
                                       int64_t Lc) {
  return estimateLevelMisses(
      Info, Tiles, OuterIntraVar, /*PivotIsIntra=*/true,
      [Lc](const ArrayAccess &A, const TileMap &T) {
        return footprintLines(A, T, Lc);
      });
}

double ltp::estimateL2MissesNoPrefetch(const StageAccessInfo &Info,
                                       const TileMap &Tiles,
                                       const std::string &InnerInterVar,
                                       int64_t Lc) {
  return estimateLevelMisses(
      Info, Tiles, InnerInterVar, /*PivotIsIntra=*/false,
      [Lc](const ArrayAccess &A, const TileMap &T) {
        return footprintLines(A, T, Lc);
      });
}
