//===- CacheEmu.cpp - cache emulation bound (Algorithm 1) ----------------===//

#include "model/CacheEmu.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ltp;

int64_t ltp::emulateMaxTileDim(const CacheEmuParams &Params) {
  assert(Params.DTS > 0 && "element size must be positive");
  assert(Params.RowStrideElems > 0 && "row stride must be positive");
  assert(Params.MaxRows > 0 && "row bound must be positive");

  // lc: elements per L1 cache line.
  int64_t Lc = Params.L1LineBytes / Params.DTS;
  assert(Lc > 0 && "cache line smaller than one element");

  // The paper's slot count: Nsets = LiCS / (Liway * DTS). The emulated
  // structure is a one-way slot space indexed by line number; it is more
  // permissive than physical set-index math for power-of-two row strides,
  // which matches the paper's published tile bounds (e.g. Ti = 32 for the
  // Listing 3 matmul) — modern L1s tolerate these strides better than
  // naive set analysis predicts once the prefetchers run ahead.
  int64_t NumSets =
      Params.Cache.SizeBytes / (Params.Cache.Ways * Params.DTS);
  assert(NumSets > 0 && "cache smaller than one set");

  // Effective associativity shared between hardware threads.
  int64_t EffWays =
      std::max<int64_t>(1, Params.Cache.Ways / Params.EffectiveWaysDivisor);

  // Row width in lines, including the prefetcher's extra line(s).
  int64_t RowLines = 0;
  int L2Pref = Params.L2Pref;
  int L2MaxPref = Params.L2MaxPref;
  if (Params.NoPrefetchPadding) {
    RowLines = (std::max(Params.PrevTileElems, Lc) + Lc - 1) / Lc;
    L2Pref = 0;
    L2MaxPref = 0;
  } else if (Params.ForL2) {
    NumSets = std::max<int64_t>(1, NumSets / 2);
    RowLines = (std::max(Params.PrevTileElems, Lc) + Lc - 1) / Lc;
  } else {
    RowLines = (std::max(Params.PrevTileElems + Lc, 2 * Lc) + Lc - 1) / Lc;
  }

  std::vector<int64_t> EmuCache(static_cast<size_t>(NumSets), 0);
  int64_t MaxTi = 0;
  int64_t TotalLines = 0; // `s` in the pseudocode
  bool Interference = false;

  do {
    // Line number of the start of the next row.
    int64_t StartLine =
        (Params.BaseAddrElems + MaxTi * Params.RowStrideElems + Lc - 1) / Lc;
    for (int64_t I = 0; I != RowLines; ++I) {
      int64_t Set = (StartLine + I) % NumSets;
      if (EmuCache[static_cast<size_t>(Set)] == EffWays) {
        Interference = true;
      } else {
        ++EmuCache[static_cast<size_t>(Set)];
        ++TotalLines;
      }
      // Constant-stride prefetches issued within the distance window must
      // not evict useful data either.
      if (TotalLines - I <= L2MaxPref) {
        for (int P = 0; P != L2Pref; ++P) {
          int64_t PrefSet = (StartLine + I + P) % NumSets;
          if (EmuCache[static_cast<size_t>(PrefSet)] == EffWays)
            Interference = true;
        }
      }
    }
    if (!Interference)
      ++MaxTi;
  } while (!Interference && MaxTi != Params.MaxRows);

  return std::max<int64_t>(1, MaxTi);
}
