//===- MissModel.cpp - closed-form per-level miss prediction -------------===//

#include "model/MissModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace ltp;
using namespace ltp::model;

namespace {

struct LeafLoop {
  std::string Name; // current schedule-visible name
  std::string OriginVar;
  int64_t Trip = 1;
  int64_t Stride = 1;
};

int findLeaf(const std::vector<LeafLoop> &Leaves, const std::string &Name) {
  for (size_t I = 0; I != Leaves.size(); ++I)
    if (Leaves[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

} // namespace

bool ltp::model::scheduledNest(const Func &F, int StageIndex,
                               const StageAccessInfo &Info,
                               std::vector<LoopDim> &Out,
                               std::string *WhyNot) {
  auto Fail = [&](const std::string &Why) {
    if (WhyNot)
      *WhyNot = Why;
    return false;
  };

  std::vector<LeafLoop> Leaves;
  for (const LoopInfo &Loop : Info.Loops)
    Leaves.push_back({Loop.Name, Loop.Name, Loop.Extent, 1});

  const Definition &Def = StageIndex < 0 ? F.pureDefinition()
                                         : F.updateDefinition(StageIndex);
  for (const ScheduleDirective &Directive : Def.Schedule.Directives) {
    if (const auto *S = std::get_if<SplitDirective>(&Directive)) {
      int Pos = findLeaf(Leaves, S->Old);
      if (Pos < 0)
        return Fail("split of unknown loop " + S->Old);
      if (S->Factor <= 0)
        return Fail("non-positive split factor");
      LeafLoop Old = Leaves[static_cast<size_t>(Pos)];
      LeafLoop Inner{S->Inner, Old.OriginVar,
                     std::min(S->Factor, Old.Trip), Old.Stride};
      LeafLoop Outer{S->Outer, Old.OriginVar,
                     (Old.Trip + S->Factor - 1) / S->Factor,
                     Old.Stride * S->Factor};
      Leaves[static_cast<size_t>(Pos)] = Inner;
      Leaves.insert(Leaves.begin() + Pos + 1, Outer);
    } else if (const auto *R = std::get_if<ReorderDirective>(&Directive)) {
      // The reorder permutes the named loops across the positions they
      // currently occupy (Halide semantics, innermost first).
      std::vector<int> Positions;
      for (const std::string &Name : R->InnermostFirst) {
        int Pos = findLeaf(Leaves, Name);
        if (Pos < 0)
          return Fail("reorder of unknown loop " + Name);
        Positions.push_back(Pos);
      }
      std::vector<int> Sorted = Positions;
      std::sort(Sorted.begin(), Sorted.end());
      std::vector<LeafLoop> Reordered = Leaves;
      for (size_t I = 0; I != Sorted.size(); ++I)
        Reordered[static_cast<size_t>(Sorted[I])] =
            Leaves[static_cast<size_t>(Positions[I])];
      Leaves = std::move(Reordered);
    } else if (const auto *U = std::get_if<UnrollJamDirective>(&Directive)) {
      // unroll_jam splits in place; the jammed copies interleave in time
      // but cover the same footprint as the split's inner loop.
      int Pos = findLeaf(Leaves, U->Name);
      if (Pos < 0)
        return Fail("unroll_jam of unknown loop " + U->Name);
      LeafLoop Old = Leaves[static_cast<size_t>(Pos)];
      LeafLoop Inner{U->Name + "_uji", Old.OriginVar,
                     std::min(U->Factor, Old.Trip), Old.Stride};
      LeafLoop Outer{U->Name + "_ujo", Old.OriginVar,
                     (Old.Trip + U->Factor - 1) / U->Factor,
                     Old.Stride * U->Factor};
      Leaves[static_cast<size_t>(Pos)] = Inner;
      Leaves.insert(Leaves.begin() + Pos + 1, Outer);
    } else if (std::get_if<FuseDirective>(&Directive)) {
      // A fused loop advances two origin variables at once; the
      // per-variable footprint algebra below cannot express that.
      return Fail("fused loops");
    }
    // Marks (parallel/vectorize/unroll) do not change the structure the
    // miss model sees; the simulator replays them sequentially too.
  }

  Out.clear();
  for (const LeafLoop &L : Leaves)
    Out.push_back({L.OriginVar, L.Trip, L.Stride});
  return true;
}

namespace {

/// A reuse group: accesses to the same buffer whose indices differ only
/// in constant offsets (uniformly generated references). The group is
/// charged once, over the union footprint.
struct ReuseGroup {
  const ArrayAccess *Leader = nullptr;
  /// Per dimension: constant spread (max Const - min Const) across the
  /// group's members.
  std::vector<int64_t> ConstSpread;
};

/// Per-loop movement of one group along each array dimension, under a
/// nest prefix: extent_d = 1 + ConstSpread_d + sum_v |c_dv| * move_v,
/// where move_v is the origin variable's covered range.
struct GroupGeometry {
  const ReuseGroup *Group = nullptr;
  /// Element strides of the accessed buffer, dimension 0 first.
  const std::vector<int64_t> *BufStrides = nullptr;
  /// Per nest loop: true when the group's index advances with it.
  std::vector<bool> Uses;
  /// Per nest loop: elements moved along dimension 0 per iteration
  /// (|c0| * loop stride; 0 when the loop does not touch dimension 0).
  std::vector<int64_t> Dim0Move;
};

} // namespace

MissPrediction ltp::model::predictMisses(const StageAccessInfo &Info,
                                         const std::vector<LoopDim> &Nest,
                                         const ArchParams &Arch,
                                         const BufferStrides &Strides,
                                         bool NonTemporalOutput) {
  MissPrediction P;
  auto Fail = [&](const std::string &Why) {
    P.Analytic = false;
    P.WhyNot = Why;
    return P;
  };

  if (Info.HasPredicates)
    return Fail("predicated (data-dependent) iteration domain");
  if (Nest.empty())
    return Fail("empty nest");

  const int64_t LineBytes = Arch.L1.LineBytes;
  const int64_t DTS = Info.DTS;
  if (DTS <= 0 || LineBytes <= 0 || LineBytes % DTS != 0)
    return Fail("element size does not divide the line size");

  // ---- Reuse-group formation (uniformly generated references). ----------
  std::vector<ReuseGroup> Groups;
  for (const ArrayAccess &A : Info.Accesses) {
    if (NonTemporalOutput && A.IsOutput)
      continue; // streaming stores bypass the hierarchy
    for (const AffineIndex &Index : A.Index)
      if (!Index.IsAffine)
        return Fail("non-affine subscript on " + A.Buffer);
    // Unit stride along the contiguous dimension: the line/segment
    // algebra below assumes dense or constant-offset dim-0 movement.
    if (!A.Index.empty())
      for (const auto &[Var, Coeff] : A.Index.front().Coeffs)
        if (Coeff != 0 && Coeff != 1 && Coeff != -1)
          return Fail("non-unit contiguous stride on " + A.Buffer);

    ReuseGroup *Home = nullptr;
    for (ReuseGroup &G : Groups) {
      if (G.Leader->Buffer != A.Buffer ||
          G.Leader->Index.size() != A.Index.size())
        continue;
      bool SameCoeffs = true;
      for (size_t D = 0; D != A.Index.size() && SameCoeffs; ++D)
        SameCoeffs = G.Leader->Index[D].Coeffs == A.Index[D].Coeffs;
      if (SameCoeffs) {
        Home = &G;
        break;
      }
    }
    if (!Home) {
      Groups.push_back({&A, std::vector<int64_t>(A.Index.size(), 0)});
      continue;
    }
    for (size_t D = 0; D != A.Index.size(); ++D) {
      int64_t Delta =
          std::llabs(A.Index[D].Const - Home->Leader->Index[D].Const);
      Home->ConstSpread[D] = std::max(Home->ConstSpread[D], Delta);
    }
  }
  if (Groups.empty())
    return Fail("no cached accesses");

  // ---- Per-group geometry. ----------------------------------------------
  const size_t NL = Nest.size();
  std::map<std::string, int64_t> OriginExtent;
  for (const LoopInfo &Loop : Info.Loops)
    OriginExtent[Loop.Name] = Loop.Extent;

  std::vector<GroupGeometry> Geom;
  for (const ReuseGroup &G : Groups) {
    GroupGeometry GG;
    GG.Group = &G;
    GG.Uses.assign(NL, false);
    GG.Dim0Move.assign(NL, 0);
    for (size_t J = 0; J != NL; ++J) {
      int MovedDims = 0;
      for (const AffineIndex &Index : G.Leader->Index)
        if (Index.Coeffs.contains(Nest[J].OriginVar) &&
            Index.Coeffs.at(Nest[J].OriginVar) != 0) {
          GG.Uses[J] = true;
          ++MovedDims;
        }
      // One loop moving several dimensions at once (e.g. a diagonal
      // A(i, i)) breaks the per-dimension traversal walk below.
      if (MovedDims > 1)
        return Fail("coupled subscripts on " + G.Leader->Buffer);
      const AffineIndex &Dim0 = G.Leader->Index.front();
      auto C0 = Dim0.Coeffs.find(Nest[J].OriginVar);
      if (C0 != Dim0.Coeffs.end() && C0->second != 0)
        GG.Dim0Move[J] = std::llabs(C0->second) * Nest[J].Stride;
    }

    auto It = Strides.find(G.Leader->Buffer);
    if (It == Strides.end())
      return Fail("unknown buffer shape for " + G.Leader->Buffer);
    const std::vector<int64_t> &BS = It->second;
    if (BS.size() != G.Leader->Index.size())
      return Fail("buffer rank mismatch for " + G.Leader->Buffer);
    if (BS.front() != 1)
      return Fail("non-contiguous innermost dimension of " +
                  G.Leader->Buffer);
    GG.BufStrides = &BS;
    Geom.push_back(std::move(GG));
  }

  // Footprint extent of group \p G along dimension \p D under the nest
  // prefix [0, K]: constant spread plus per-origin-variable movement,
  // clamped to the variable's full range.
  auto DimExtent = [&](const GroupGeometry &GG, size_t D, size_t K) {
    const AffineIndex &Index = GG.Group->Leader->Index[D];
    int64_t Extent = 1 + GG.Group->ConstSpread[D];
    for (const auto &[Var, Coeff] : Index.Coeffs) {
      if (Coeff == 0)
        continue;
      int64_t Move = 0;
      for (size_t J = 0; J != K; ++J)
        if (Nest[J].OriginVar == Var)
          Move += Nest[J].Stride * (Nest[J].Trip - 1);
      auto ExtIt = OriginExtent.find(Var);
      if (ExtIt != OriginExtent.end())
        Move = std::min(Move, ExtIt->second - 1);
      Extent += std::llabs(Coeff) * Move;
    }
    return Extent;
  };

  // ---- Set-based line footprints (the capacity gates). ------------------
  // Layout-contiguous dimensions merge into runs; every other dimension
  // multiplies the number of disjoint runs. Footprints are counted in
  // whole cache lines: a column of N rows occupies N lines no matter how
  // few bytes of each line it touches.
  struct SetShape {
    double Segments = 1.0;
    double LinesPerRun = 1.0;
    /// Line distance between run heads (0 when single-run or the stride
    /// is not a whole number of lines).
    int64_t StrideLines = 0;
  };
  auto GroupShape = [&](const GroupGeometry &GG, size_t K) {
    const size_t Rank = GG.Group->Leader->Index.size();
    const std::vector<int64_t> &BS = *GG.BufStrides;
    int64_t Run = DimExtent(GG, 0, K);
    size_t D = 1;
    while (D < Rank && BS[D] == Run) {
      Run *= DimExtent(GG, D, K);
      ++D;
    }
    SetShape S;
    for (size_t E = D; E < Rank; ++E)
      S.Segments *= static_cast<double>(DimExtent(GG, E, K));
    S.LinesPerRun = std::ceil(static_cast<double>(Run) *
                              static_cast<double>(DTS) /
                              static_cast<double>(LineBytes));
    if (D < Rank && (BS[D] * DTS) % LineBytes == 0)
      S.StrideLines = BS[D] * DTS / LineBytes;
    return S;
  };
  auto GroupLineBytes = [&](const GroupGeometry &GG, size_t K) {
    SetShape S = GroupShape(GG, K);
    return S.Segments * S.LinesPerRun * static_cast<double>(LineBytes);
  };
  // Total footprint (bytes of lines) of all groups under prefix [0, K).
  auto FootprintBytes = [&](size_t K) {
    double Total = 0.0;
    for (const GroupGeometry &GG : Geom)
      Total += GroupLineBytes(GG, K);
    return Total;
  };

  // Does the prefix-[0, K) footprint stay resident in a cache of
  // \p Cache's geometry? Capacity first (7/8 of the size absorbs
  // prefetcher-resident lines and LRU's imperfection at exactly-capacity
  // footprints), then set pressure: a group whose run heads are a
  // power-of-two line stride apart can land all its lines in a handful
  // of sets and thrash an associativity-bound cache long before the
  // capacity bound (the transposed-array tile of Algorithm 1).
  auto Resident = [&](size_t K, const CacheParams &Cache) {
    if (FootprintBytes(K) > static_cast<double>(Cache.SizeBytes) * 0.875)
      return false;
    const int64_t NumSets = Cache.numSets();
    for (const GroupGeometry &GG : Geom) {
      SetShape S = GroupShape(GG, K);
      if (S.Segments <= static_cast<double>(Cache.Ways) ||
          S.StrideLines <= 0)
        continue;
      int64_t G = std::gcd(S.StrideLines, NumSets);
      double HeadSets = static_cast<double>(NumSets / G);
      double EffSets = std::min(
          static_cast<double>(NumSets),
          HeadSets * std::min(S.LinesPerRun, static_cast<double>(G)));
      if (S.Segments * S.LinesPerRun >
          static_cast<double>(Cache.Ways) * EffSets)
        return false;
    }
    return true;
  };

  // Bytes *actually touched* under prefix [0, K) — per dimension the
  // product of the moving loops' trip counts (distinct index values)
  // rather than their span. A loop of trip 2 and stride 512 spans 513
  // rows but touches 2: the span-based footprint above decides what a
  // cache must HOLD (intermediate lines age out the resident ones), the
  // touched footprint decides what eviction can be PROVEN from capacity
  // alone.
  auto TouchedExtent = [&](const GroupGeometry &GG, size_t D, size_t K) {
    const AffineIndex &Index = GG.Group->Leader->Index[D];
    int64_t Pts = 1;
    for (const auto &[Var, Coeff] : Index.Coeffs) {
      if (Coeff == 0)
        continue;
      int64_t P = 1;
      for (size_t J = 0; J != K; ++J)
        if (Nest[J].OriginVar == Var)
          P *= Nest[J].Trip;
      auto ExtIt = OriginExtent.find(Var);
      if (ExtIt != OriginExtent.end())
        P = std::min(P, ExtIt->second);
      Pts *= P;
    }
    return std::min(Pts + GG.Group->ConstSpread[D], DimExtent(GG, D, K));
  };
  auto TouchedBytes = [&](size_t K) {
    double Total = 0.0;
    for (const GroupGeometry &GG : Geom) {
      const size_t Rank = GG.Group->Leader->Index.size();
      double Lines =
          std::ceil(static_cast<double>(TouchedExtent(GG, 0, K)) *
                    static_cast<double>(DTS) / static_cast<double>(LineBytes));
      for (size_t D = 1; D < Rank; ++D)
        Lines *= static_cast<double>(TouchedExtent(GG, D, K));
      Total += Lines * static_cast<double>(LineBytes);
    }
    return Total;
  };

  // ---- Applicability: sub-line strided traversals. ----------------------
  // A loop advancing dimension 0 by less than a line per iteration
  // revisits each line across its iterations. The set-based footprint
  // algebra cannot see traversal order, so it only stays sound when the
  // revisit distance — the footprint of one iteration of that loop —
  // stays L1-resident. Column-major walks of large arrays (every access
  // a miss in the simulator) fall back to simulation here.
  const int64_t Lc = LineBytes / DTS;
  for (const GroupGeometry &GG : Geom)
    for (size_t J = 0; J != NL; ++J)
      if (GG.Dim0Move[J] > 0 && GG.Dim0Move[J] < Lc &&
          !Resident(J, Arch.L1))
        return Fail("sub-line strided traversal of " +
                    GG.Group->Leader->Buffer);

  // ---- Traversal-ordered fresh sweep. -----------------------------------
  // Cold-sweep misses depend on the order lines are visited, not just the
  // footprint: the next-line prefetcher only covers a line whose
  // predecessor was touched recently enough for the prefetched line to
  // survive in the L1. Walk the group's moving loops inside-out, tracking
  // the contiguous byte range each stream instance covers (CurContig) and
  // the number of uncovered stream heads per sweep (M):
  //  * a sub-line dim-0 advance extends the current run (the global
  //    sub-line gate guaranteed the revisit window is L1-resident). When
  //    an earlier dim-0 advance left strided stream heads (an inverted
  //    split: s_t inside s_i) and the extension reaches the head stride,
  //    the heads tile the gap between them — the joint covered range is
  //    the whole span, and later advances compare against that;
  //  * an advance adjacent to the covered range (ByteMove <= CurContig)
  //    concatenates when the crossing is bridged — immediately for a
  //    single stream, via L1 residency of the in-between footprint
  //    otherwise. An unbridged adjacent advance is an interleaved revisit
  //    of a just-covered address range: if the prefix's touched bytes
  //    overflow the L1 the crossing lines are certainly evicted and the
  //    streams restart cold (multiply); if they fit, survival depends on
  //    how the streams' base addresses align into the sets, which no
  //    closed form over shapes can know — the walk flags it and the
  //    caller declines to the simulator;
  //  * any other advance starts fresh streams: M multiplies by the trip.
  struct FreshInfo {
    double Misses = 1.0;      ///< per-sweep L1 demand misses
    int64_t StreamStride = 0; ///< byte stride of the innermost multiplier
    bool AddrSensitive = false; ///< unprovable interleaved-revisit seen
  };
  auto FreshWalk = [&](const GroupGeometry &GG, size_t K) {
    const std::vector<int64_t> &BS = *GG.BufStrides;
    const size_t Rank = GG.Group->Leader->Index.size();
    FreshInfo F;
    for (size_t D = 1; D < Rank; ++D)
      F.Misses *= static_cast<double>(1 + GG.Group->ConstSpread[D]);
    double CurContig = static_cast<double>(1 + GG.Group->ConstSpread[0]) *
                       static_cast<double>(DTS);
    // Strided dim-0 stream heads awaiting a gap-filling sub-line merge.
    double HeadStride = 0.0;
    double HeadCount = 1.0;
    for (size_t J = 0; J != K; ++J) {
      if (!GG.Uses[J])
        continue;
      size_t MovedDim = 0;
      int64_t MoveElems = 0;
      for (size_t D = 0; D != Rank; ++D) {
        auto C = GG.Group->Leader->Index[D].Coeffs.find(Nest[J].OriginVar);
        if (C != GG.Group->Leader->Index[D].Coeffs.end() && C->second != 0) {
          MovedDim = D;
          MoveElems = std::llabs(C->second) * Nest[J].Stride;
        }
      }
      double ByteMove = static_cast<double>(MoveElems) *
                        static_cast<double>(BS[MovedDim]) *
                        static_cast<double>(DTS);
      double T = static_cast<double>(Nest[J].Trip);
      if (MovedDim == 0 && ByteMove < static_cast<double>(LineBytes)) {
        CurContig += ByteMove * (T - 1.0);
        if (HeadStride > 0.0 && CurContig >= HeadStride) {
          CurContig += HeadStride * (HeadCount - 1.0);
          HeadStride = 0.0;
          HeadCount = 1.0;
        }
      } else if (ByteMove <= CurContig) {
        if (F.Misses <= 1.0 || Resident(J, Arch.L1)) {
          CurContig += ByteMove * (T - 1.0);
        } else {
          // Interleaved revisit of a just-covered range. When the bytes
          // the prefix actually touches overflow the L1, eviction of the
          // crossing lines is capacity-certain and the streams restart
          // cold (multiply). When they FIT, survival hinges on how the
          // buffers' base addresses align into the sets — undecidable
          // from shapes alone, so flag for the applicability gate.
          if (TouchedBytes(J) <=
              static_cast<double>(Arch.L1.SizeBytes))
            F.AddrSensitive = true;
          F.Misses *= T;
          if (F.StreamStride == 0)
            F.StreamStride = static_cast<int64_t>(ByteMove);
        }
      } else {
        F.Misses *= T;
        if (F.StreamStride == 0)
          F.StreamStride = static_cast<int64_t>(ByteMove);
        if (MovedDim == 0) {
          HeadStride = ByteMove;
          HeadCount = T;
        }
      }
    }
    return F;
  };

  // ---- Applicability: alignment-dependent interleaved revisits. ---------
  // The full-nest walk visits every branch decision of every prefix walk
  // (the walk for prefix K is exactly the first K steps of this one), so
  // one pass per group suffices to rule the flag out everywhere.
  for (const GroupGeometry &GG : Geom)
    if (FreshWalk(GG, NL).AddrSensitive)
      return Fail("alignment-dependent interleaved streams of " +
                  GG.Group->Leader->Buffer);

  // L1 fresh misses of one cold sweep under prefix [0, K).
  auto FreshL1 = [&](const GroupGeometry &GG, size_t K) {
    if (!Arch.L1NextLinePrefetcher)
      return GroupLineBytes(GG, K) / static_cast<double>(LineBytes);
    return FreshWalk(GG, K).Misses;
  };

  // L2 fresh misses: with the next-line path on, covered line bodies are
  // prefetch-filled into the L2 as a side effect of the L1 fills, so only
  // the L1 misses reach the L2 as demand accesses. Those form a
  // constant-stride stream the per-4KB-page streamer covers after ~3
  // training misses per page when the stride fits its window.
  auto FreshL2 = [&](const GroupGeometry &GG, size_t K) {
    double Lines = GroupLineBytes(GG, K) / static_cast<double>(LineBytes);
    if (!Arch.L1NextLinePrefetcher) {
      double Pages =
          std::max(1.0, Lines * static_cast<double>(LineBytes) / 4096.0);
      return std::min(Lines, 3.0 * Pages + 1.0);
    }
    FreshInfo F = FreshWalk(GG, K);
    if (F.Misses <= 1.0)
      return 1.0; // single stream: body prefilled, only the head misses
    if (F.StreamStride > 0 &&
        F.StreamStride <= Arch.L2MaxPrefetchDistance * LineBytes &&
        Arch.L2PrefetchDegree > 0) {
      double Pages = std::max(1.0, GroupLineBytes(GG, K) / 4096.0);
      return std::min(F.Misses, std::max(1.0, 3.0 * Pages));
    }
    return F.Misses; // stream stride outside the streamer's window
  };

  // ---- Replay recurrence (the generalized Eq. 5/10 pivot collapse). -----
  // Walk the nest inside-out. An advancing loop grows the fresh footprint
  // (misses become the cold-sweep cost of the larger prefix) — unless an
  // inner non-advancing loop already overflowed the level, in which case
  // the sweep repeats and the misses multiply. A non-advancing loop whose
  // one-iteration footprint exceeds the level evicts the group between
  // iterations and multiplies the misses; if it fits, iterations replay
  // from cache for free.
  auto GroupMisses = [&](const GroupGeometry &GG, const CacheParams &Cache,
                         auto &&Fresh) {
    double M = Fresh(GG, 0);
    bool Replayed = false;
    for (size_t J = 0; J != NL; ++J) {
      if (GG.Uses[J]) {
        if (Replayed)
          M *= static_cast<double>(Nest[J].Trip);
        else
          M = Fresh(GG, J + 1);
      } else if (!Resident(J, Cache)) {
        M *= static_cast<double>(Nest[J].Trip);
        Replayed = true;
      }
    }
    return M;
  };

  // LTP_MODEL_DEBUG=1 prints the per-group attribution (calibration aid).
  static const bool Debug = std::getenv("LTP_MODEL_DEBUG") != nullptr;
  for (const GroupGeometry &GG : Geom) {
    double G1 = GroupMisses(GG, Arch.L1, FreshL1);
    double G2 = GroupMisses(GG, Arch.L2, FreshL2);
    if (Debug) {
      std::fprintf(stderr, "  model %-8s L1=%-10.4g L2=%-10.4g nest",
                   GG.Group->Leader->Buffer.c_str(), G1, G2);
      for (size_t J = 0; J != NL; ++J)
        std::fprintf(stderr, " %s[%lld/%lld]%s", Nest[J].OriginVar.c_str(),
                     static_cast<long long>(Nest[J].Trip),
                     static_cast<long long>(Nest[J].Stride),
                     GG.Uses[J] ? "*" : "");
      std::fprintf(stderr, "\n");
    }
    P.L1Misses += G1;
    P.L2Misses += G2;
  }
  P.Analytic = true;
  return P;
}
