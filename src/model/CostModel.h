//===- CostModel.h - prefetch-aware cache cost model (Eqs. 1-12) -*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytical model of Section 3.2, generalized from the paper's
/// matmul walkthrough to arbitrary affine accesses (DESIGN.md spells out
/// the generalization and checks it reproduces Eqs. 1-12 exactly on the
/// matmul example; CostModelTest.cpp verifies that):
///
///  * the *footprint* of an access over a set of (tiled) loops extends
///    each array dimension by `sum |ci| * (Ti - 1) + 1`;
///  * with streaming prefetchers, the *cold misses* of a footprint equal
///    its number of distinct contiguous segments — the product of the
///    non-column extents (Eq. 3's "1 + 1 + Tk");
///  * `CL1` (Eq. 5) counts, per access, `T_outer` fresh footprints per
///    tile when the outermost intra-tile loop indexes the access, or one
///    reused footprint otherwise, times the number of tiles;
///  * `CL2` (Eq. 10) applies the same rule at the innermost inter-tile
///    loop over whole-tile footprints;
///  * `Ctotal = a2*CL1 + a3*CL2` (Eq. 11);
///  * `Corder` (Eq. 12) sums, per original loop, the iteration distance
///    between its inter-tile and intra-tile incarnations in the final
///    order.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_COSTMODEL_H
#define LTP_MODEL_COSTMODEL_H

#include "arch/ArchParams.h"
#include "core/AccessInfo.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ltp {

/// Tile sizes per original loop variable. A loop tiled at its full extent
/// is effectively untiled (its inter-tile loop has one iteration).
using TileMap = std::map<std::string, int64_t>;

/// Returns ceil(Extent / Tile) — the inter-tile trip count of a loop.
int64_t interTrip(int64_t Extent, int64_t Tile);

/// Footprint extent of one array dimension over the loops in \p Tiles
/// (loops absent from the map contribute nothing).
int64_t footprintDimExtent(const AffineIndex &Index, const TileMap &Tiles);

/// Prefetch-adjusted cold misses of the footprint of \p Access over the
/// loops in \p Tiles: the number of distinct contiguous segments, i.e. the
/// product of the extents of every non-column dimension (the column
/// dimension's run is covered by the next-line prefetcher).
int64_t footprintSegments(const ArrayAccess &Access, const TileMap &Tiles);

/// Footprint size in elements (product over all dimensions), the working
/// set contribution of one access.
int64_t footprintElements(const ArrayAccess &Access, const TileMap &Tiles);

/// Working set over the loops in \p Tiles, summed over all accesses
/// (Eqs. 1 and 6 generalized).
int64_t workingSetElements(const StageAccessInfo &Info, const TileMap &Tiles);

/// Estimated L1 misses (Eq. 5): \p OuterIntraVar is the outermost
/// intra-tile loop; \p Tiles must cover every loop of the nest.
double estimateL1Misses(const StageAccessInfo &Info, const TileMap &Tiles,
                        const std::string &OuterIntraVar);

/// Estimated L2 misses (Eq. 10): \p InnerInterVar is the innermost
/// inter-tile loop.
double estimateL2Misses(const StageAccessInfo &Info, const TileMap &Tiles,
                        const std::string &InnerInterVar);

/// Weighted total (Eq. 11).
double totalCost(const StageAccessInfo &Info, const TileMap &Tiles,
                 const std::string &OuterIntraVar,
                 const std::string &InnerInterVar, const ArchParams &Arch);

/// Loop-order cost (Eq. 12). \p IntraOrder and \p InterOrder list original
/// loop names innermost-first; loops tiled at full extent have no
/// inter-tile loop and must be omitted from \p InterOrder.
double orderCost(const StageAccessInfo &Info, const TileMap &Tiles,
                 const std::vector<std::string> &IntraOrder,
                 const std::vector<std::string> &InterOrder);

/// Prefetch-*unaware* variants used by the ablation bench and by the TSS
/// baseline: cold misses are footprint-lines (`elements / lc`) instead of
/// segments.
double estimateL1MissesNoPrefetch(const StageAccessInfo &Info,
                                  const TileMap &Tiles,
                                  const std::string &OuterIntraVar,
                                  int64_t Lc);
double estimateL2MissesNoPrefetch(const StageAccessInfo &Info,
                                  const TileMap &Tiles,
                                  const std::string &InnerInterVar,
                                  int64_t Lc);

} // namespace ltp

#endif // LTP_MODEL_COSTMODEL_H
