//===- TileBound.cpp - closed-form solution of Algorithm 1 ---------------===//

#include "model/TileBound.h"

#include "obs/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace ltp;
using namespace ltp::model;

bool ltp::model::analyticMaxTileDim(const CacheEmuParams &Params,
                                    int64_t &Out) {
  assert(Params.DTS > 0 && "element size must be positive");
  assert(Params.RowStrideElems > 0 && "row stride must be positive");
  assert(Params.MaxRows > 0 && "row bound must be positive");

  // Mirror the emulator's derived geometry exactly; any divergence here
  // would break the bit-for-bit parity AnalyticModelTest pins.
  const int64_t Lc = Params.L1LineBytes / Params.DTS;
  if (Lc <= 0)
    return false;

  int64_t NumSets =
      Params.Cache.SizeBytes / (Params.Cache.Ways * Params.DTS);
  if (NumSets <= 0)
    return false;

  const int64_t EffWays =
      std::max<int64_t>(1, Params.Cache.Ways / Params.EffectiveWaysDivisor);

  int64_t RowLines = 0;
  int L2Pref = Params.L2Pref;
  int L2MaxPref = Params.L2MaxPref;
  if (Params.NoPrefetchPadding) {
    RowLines = (std::max(Params.PrevTileElems, Lc) + Lc - 1) / Lc;
    L2Pref = 0;
    L2MaxPref = 0;
  } else if (Params.ForL2) {
    NumSets = std::max<int64_t>(1, NumSets / 2);
    RowLines = (std::max(Params.PrevTileElems, Lc) + Lc - 1) / Lc;
  } else {
    RowLines = (std::max(Params.PrevTileElems + Lc, 2 * Lc) + Lc - 1) / Lc;
  }

  // Line-aligned rows: the emulator's ceil-divided start line collapses
  // to exact multiples only when base and stride are whole lines.
  if (Params.BaseAddrElems % Lc != 0 || Params.RowStrideElems % Lc != 0)
    return false;
  const int64_t StrideLines = Params.RowStrideElems / Lc;
  if (StrideLines <= 0)
    return false;

  // A row must fit within one period of the slot space, or it would
  // revisit its own slots and the occupancy algebra below breaks.
  if (RowLines > NumSets)
    return false;

  const int64_t G = std::gcd(StrideLines, NumSets);
  const int64_t Period = NumSets / G; // rows per period
  const int64_t Q = (RowLines + G - 1) / G; // lines landing per start slot

  // Within-period visit order: start slots advance by (SL/g) mod P each
  // row. The closed form needs either disjoint stripes (order
  // irrelevant) or the sequential order, where partial-period occupancy
  // is maximal at the start slot of the next unplaced row.
  const int64_t StepInPeriod = (StrideLines / G) % Period;
  const bool Disjoint = RowLines <= G;
  if (!Disjoint && StepInPeriod != 1)
    return false;

  const int64_t FullPeriods = EffWays / Q;
  const int64_t Partial = EffWays % Q;
  int64_t Bound = FullPeriods * Period + Partial;

  // The constant-stride prefetch probe (L2 emulation) re-checks slots in
  // a small window at the start of the placement; it can only flag
  // interference if some slot is already full while the window is open.
  // Require the predicted interference row to lie safely past the
  // window, else defer to the emulator.
  if (L2Pref > 0 && L2MaxPref > 0) {
    // Rows whose placement still probes: t*R + 1 <= L2MaxPref, plus one
    // row of margin for the probe's look-ahead into the next stripe.
    const int64_t WindowRows = (L2MaxPref - 1) / RowLines + 2;
    const int64_t MaxOccInWindow = ((WindowRows + Period - 1) / Period) * Q;
    if (MaxOccInWindow >= EffWays)
      return false;
    if (Bound <= WindowRows)
      return false;
  }

  Out = std::max<int64_t>(1, std::min(Bound, Params.MaxRows));
  return true;
}

int64_t ltp::model::boundMaxTileDim(const CacheEmuParams &Params,
                                    ScoreMode Mode, bool *UsedAnalytic) {
  static obs::Counter &Analytic = obs::counter("model.bound.analytic");
  static obs::Counter &Emulated = obs::counter("model.bound.emulated");
  static obs::Counter &Fallback = obs::counter("model.bound.fallback");

  if (UsedAnalytic)
    *UsedAnalytic = false;
  if (Mode != ScoreMode::Sim) {
    int64_t Bound = 0;
    if (analyticMaxTileDim(Params, Bound)) {
      Analytic.add();
      if (UsedAnalytic)
        *UsedAnalytic = true;
      return Bound;
    }
    // Outside the closed form's domain (unaligned strides, probe-window
    // interference, non-sequential period order): fall back to the
    // emulator and count it, even in pure Analytic mode — a wrong bound
    // is never an acceptable trade for skipping the emulation.
    Fallback.add();
  }
  Emulated.add();
  return emulateMaxTileDim(Params);
}
