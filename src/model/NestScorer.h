//===- NestScorer.h - precompiled dense candidate scorer --------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The temporal search (Algorithm 2) evaluates thousands of tile
/// assignments per stage, and the generic cost-model entry points
/// (`workingSetElements`, `estimateL1Misses`, ...) pay a
/// `std::map<std::string,int64_t>` lookup per coefficient per candidate —
/// which profiling shows dominating the optimizer runtime on the larger
/// nests (convlayer, doitgen). NestScorer compiles the stage's access
/// functions ONCE into flat per-dimension coefficient arrays so each
/// candidate scores in O(accesses x dims) integer/double arithmetic with
/// no allocation and no string hashing.
///
/// Every method reproduces its CostModel counterpart bit for bit — same
/// integer footprint algebra, same double accumulation order — so
/// swapping the optimizer onto the scorer cannot change a chosen
/// schedule (AnalyticModelTest pins the equivalence on randomized
/// candidates, DeterminismTest-style parity pins the chosen schedules).
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_NESTSCORER_H
#define LTP_MODEL_NESTSCORER_H

#include "arch/ArchParams.h"
#include "core/AccessInfo.h"
#include "model/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ltp {
namespace model {

class NestScorer {
public:
  NestScorer(const StageAccessInfo &Info, const ArchParams &Arch);

  /// Index of loop \p Name in the dense tile vector (Info.Loops order),
  /// or -1 when the name is not a loop.
  int loopIndex(const std::string &Name) const;

  int numLoops() const { return static_cast<int>(Extents.size()); }
  int64_t loopExtent(int Loop) const { return Extents[Loop]; }

  /// interTrip(extent, tile) of loop \p Loop under \p Tiles.
  int64_t interTripAt(int Loop, const int64_t *Tiles) const;

  /// == workingSetElements(Info, Tiles).
  int64_t workingSet(const int64_t *Tiles) const;

  /// == workingSetElements(Info, Tiles with loop U set to 1): the Eq. 1
  /// footprint of one iteration of the outermost intra-tile loop.
  int64_t workingSetPivotOne(const int64_t *Tiles, int U) const;

  /// == estimateL1Misses (Eq. 5) with intra pivot \p U.
  double l1Misses(const int64_t *Tiles, int U) const;

  /// == estimateL2Misses (Eq. 10) with inter pivot \p V.
  double l2Misses(const int64_t *Tiles, int V) const;

  /// == totalCost (Eq. 11).
  double cost(const int64_t *Tiles, int U, int V) const;

  /// == the prefetch-unaware ablation pair with line size \p Lc.
  double l1MissesNoPrefetch(const int64_t *Tiles, int U, int64_t Lc) const;
  double l2MissesNoPrefetch(const int64_t *Tiles, int V, int64_t Lc) const;

  /// Renders the dense tile vector as a TileMap (acceptance is rare, so
  /// the map cost stays off the hot path).
  TileMap toTileMap(const int64_t *Tiles) const;

private:
  struct Term {
    int Loop;
    int64_t AbsCoeff;
  };
  struct Dim {
    // Empty for non-affine dims (footprint extent degrades to 1, as in
    // footprintDimExtent).
    std::vector<Term> Terms;
  };
  struct Access {
    std::vector<Dim> Dims; // dimension 0 (contiguous) first
    std::vector<bool> Uses; // per loop: any dimension references it
  };

  int64_t dimExtent(const Access &A, size_t D, const int64_t *Tiles,
                    int PivotOne) const;
  int64_t segments(const Access &A, const int64_t *Tiles,
                   int PivotOne) const;
  int64_t lines(const Access &A, const int64_t *Tiles, int PivotOne,
                int64_t Lc) const;
  double numTiles(const int64_t *Tiles) const;

  template <typename MissFn>
  double levelMisses(const int64_t *Tiles, int Pivot, bool PivotIsIntra,
                     MissFn Misses) const;

  std::vector<std::string> Names;
  std::vector<int64_t> Extents;
  std::vector<Access> Accesses;
  double A2 = 1.0;
  double A3 = 1.0;
};

} // namespace model
} // namespace ltp

#endif // LTP_MODEL_NESTSCORER_H
