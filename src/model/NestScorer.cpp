//===- NestScorer.cpp - precompiled dense candidate scorer ---------------===//

#include "model/NestScorer.h"

#include <cassert>

using namespace ltp;
using namespace ltp::model;

NestScorer::NestScorer(const StageAccessInfo &Info, const ArchParams &Arch)
    : A2(Arch.A2), A3(Arch.A3) {
  for (const LoopInfo &Loop : Info.Loops) {
    Names.push_back(Loop.Name);
    Extents.push_back(Loop.Extent);
  }
  for (const ArrayAccess &Src : Info.Accesses) {
    Access A;
    A.Uses.assign(Names.size(), false);
    for (const AffineIndex &Index : Src.Index) {
      Dim D;
      for (const auto &[Var, Coeff] : Index.Coeffs) {
        int Loop = loopIndex(Var);
        if (Loop < 0)
          continue; // non-loop symbol: footprintDimExtent skips it too
        // accessUsesVar looks at raw coefficients regardless of
        // affinity; the footprint terms honour IsAffine below.
        if (Coeff != 0)
          A.Uses[static_cast<size_t>(Loop)] = true;
        if (Index.IsAffine)
          D.Terms.push_back({Loop, Coeff < 0 ? -Coeff : Coeff});
      }
      if (!Index.IsAffine)
        D.Terms.clear();
      A.Dims.push_back(std::move(D));
    }
    Accesses.push_back(std::move(A));
  }
}

int NestScorer::loopIndex(const std::string &Name) const {
  for (size_t I = 0; I != Names.size(); ++I)
    if (Names[I] == Name)
      return static_cast<int>(I);
  return -1;
}

int64_t NestScorer::interTripAt(int Loop, const int64_t *Tiles) const {
  return interTrip(Extents[static_cast<size_t>(Loop)],
                   Tiles[static_cast<size_t>(Loop)]);
}

int64_t NestScorer::dimExtent(const Access &A, size_t D,
                              const int64_t *Tiles, int PivotOne) const {
  int64_t Extent = 1;
  for (const Term &T : A.Dims[D].Terms) {
    int64_t Tile = T.Loop == PivotOne ? 1 : Tiles[T.Loop];
    Extent += T.AbsCoeff * (Tile - 1);
  }
  return Extent;
}

int64_t NestScorer::segments(const Access &A, const int64_t *Tiles,
                             int PivotOne) const {
  assert(!A.Dims.empty() && "access has no dimensions");
  int64_t Segments = 1;
  for (size_t D = 1; D != A.Dims.size(); ++D)
    Segments *= dimExtent(A, D, Tiles, PivotOne);
  return Segments;
}

int64_t NestScorer::lines(const Access &A, const int64_t *Tiles,
                          int PivotOne, int64_t Lc) const {
  assert(!A.Dims.empty() && "access has no dimensions");
  int64_t ColumnExtent = dimExtent(A, 0, Tiles, PivotOne);
  int64_t LinesPerSegment = (ColumnExtent + Lc - 1) / Lc;
  return LinesPerSegment * segments(A, Tiles, PivotOne);
}

int64_t NestScorer::workingSet(const int64_t *Tiles) const {
  int64_t Total = 0;
  for (const Access &A : Accesses) {
    int64_t Elements = 1;
    for (size_t D = 0; D != A.Dims.size(); ++D)
      Elements *= dimExtent(A, D, Tiles, /*PivotOne=*/-1);
    Total += Elements;
  }
  return Total;
}

int64_t NestScorer::workingSetPivotOne(const int64_t *Tiles, int U) const {
  int64_t Total = 0;
  for (const Access &A : Accesses) {
    int64_t Elements = 1;
    for (size_t D = 0; D != A.Dims.size(); ++D)
      Elements *= dimExtent(A, D, Tiles, U);
    Total += Elements;
  }
  return Total;
}

double NestScorer::numTiles(const int64_t *Tiles) const {
  double N = 1.0;
  for (size_t L = 0; L != Extents.size(); ++L)
    N *= static_cast<double>(interTrip(Extents[L], Tiles[L]));
  return N;
}

template <typename MissFn>
double NestScorer::levelMisses(const int64_t *Tiles, int Pivot,
                               bool PivotIsIntra, MissFn Misses) const {
  // Mirrors estimateLevelMisses: for the L1 estimate the footprint is
  // over the intra-tile loops excluding the pivot (pivot tile treated as
  // 1); for the L2 estimate the footprint is the whole tile.
  const int PivotOne = PivotIsIntra ? Pivot : -1;
  const size_t P = static_cast<size_t>(Pivot);
  int64_t PivotIterations =
      PivotIsIntra ? Tiles[P] : interTrip(Extents[P], Tiles[P]);

  double PerTile = 0.0;
  for (const Access &A : Accesses) {
    double FootprintMisses = static_cast<double>(Misses(A, PivotOne));
    if (A.Uses[P])
      PerTile += static_cast<double>(PivotIterations) * FootprintMisses;
    else
      PerTile += FootprintMisses;
  }

  double Enclosing = numTiles(Tiles);
  if (!PivotIsIntra)
    Enclosing /= static_cast<double>(interTrip(Extents[P], Tiles[P]));
  return PerTile * Enclosing;
}

double NestScorer::l1Misses(const int64_t *Tiles, int U) const {
  return levelMisses(Tiles, U, /*PivotIsIntra=*/true,
                     [&](const Access &A, int PivotOne) {
                       return segments(A, Tiles, PivotOne);
                     });
}

double NestScorer::l2Misses(const int64_t *Tiles, int V) const {
  return levelMisses(Tiles, V, /*PivotIsIntra=*/false,
                     [&](const Access &A, int PivotOne) {
                       return segments(A, Tiles, PivotOne);
                     });
}

double NestScorer::cost(const int64_t *Tiles, int U, int V) const {
  return A2 * l1Misses(Tiles, U) + A3 * l2Misses(Tiles, V);
}

double NestScorer::l1MissesNoPrefetch(const int64_t *Tiles, int U,
                                      int64_t Lc) const {
  return levelMisses(Tiles, U, /*PivotIsIntra=*/true,
                     [&](const Access &A, int PivotOne) {
                       return lines(A, Tiles, PivotOne, Lc);
                     });
}

double NestScorer::l2MissesNoPrefetch(const int64_t *Tiles, int V,
                                      int64_t Lc) const {
  return levelMisses(Tiles, V, /*PivotIsIntra=*/false,
                     [&](const Access &A, int PivotOne) {
                       return lines(A, Tiles, PivotOne, Lc);
                     });
}

TileMap NestScorer::toTileMap(const int64_t *Tiles) const {
  TileMap Out;
  for (size_t L = 0; L != Names.size(); ++L)
    Out[Names[L]] = Tiles[L];
  return Out;
}
