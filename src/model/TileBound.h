//===- TileBound.h - closed-form solution of Algorithm 1 --------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-form evaluation of Algorithm 1 (`emulateMaxTileDim`): for
/// line-aligned rows whose stride is a whole number of cache lines, the
/// emulated placement of rows into the one-way slot space is periodic and
/// the first interference row has an exact closed form — no per-line
/// iteration required.
///
/// Derivation. Let `N` be the slot count (after the L2 halving), `W` the
/// effective ways, `R` the padded row width in lines and `SL` the row
/// stride in lines. Row `t` starts at slot `t*SL mod N`; with
/// `g = gcd(SL, N)` the starts visit exactly the multiples of `g` with
/// period `P = N/g`. Each row covers `R` consecutive slots, so after one
/// full period every start slot holds `q = ceil(R/g)` lines and every
/// other slot at most `q`. When the within-period visit order is
/// sequential (`SL/g == 1 (mod P)`, which holds for all power-of-two
/// geometries) or the stripes are disjoint (`R <= g`), the first
/// placement that finds a full slot is row `floor(W/q)*P + (W mod q)`:
///
///     maxTi = (W / q) * P + (W % q)        (integer division)
///
/// clamped to [1, MaxRows]. For the paper's Listing 3 matmul
/// (N = 1024, W = 8, R = 2 -> g = 128, q = 1) this reproduces the
/// published bound Ti = 32 on the L1 and the corresponding L2 bound.
///
/// Applicability (checked exactly; failure falls back to the emulator):
///  * base address and row stride line-aligned,
///  * row width at most one period (`R <= N`),
///  * sequential period order or disjoint stripes (above),
///  * when the L2 constant-stride prefetch probe is active, interference
///    must provably occur after the probe window has closed.
///
/// `boundMaxTileDim` dispatches on the ScoreMode and bumps the
/// `model.bound.analytic` / `model.bound.emulated` /
/// `model.bound.fallback` counters so the fallback rate is observable.
/// AnalyticModelTest pins exact equality with the emulator across
/// randomized geometries and every kernel's candidate parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_TILEBOUND_H
#define LTP_MODEL_TILEBOUND_H

#include "model/CacheEmu.h"
#include "model/ScoreMode.h"

#include <cstdint>

namespace ltp {
namespace model {

/// Evaluates the closed form when the applicability conditions hold.
/// Returns true and stores the bound (identical to what
/// `emulateMaxTileDim` would return) in \p Out on success; returns false
/// when the parameters are outside the closed form's domain.
bool analyticMaxTileDim(const CacheEmuParams &Params, int64_t &Out);

/// The scored tile bound: closed form when \p Mode allows it and the
/// check passes, the iterative emulator otherwise. Telemetry counters
/// record which path produced each bound; \p UsedAnalytic (optional)
/// reports it to the caller for per-candidate provenance.
int64_t boundMaxTileDim(const CacheEmuParams &Params, ScoreMode Mode,
                        bool *UsedAnalytic = nullptr);

} // namespace model
} // namespace ltp

#endif // LTP_MODEL_TILEBOUND_H
