//===- ScoreMode.h - candidate-scoring path selection -----------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selects how optimizer and autotuner candidates are scored:
///
///  * Analytic — closed-form only. The tile bound comes from the
///    closed-form solution of Algorithm 1 and autotuner candidates are
///    ranked by the closed-form miss model; inapplicable cases still fall
///    back to the emulator/simulator (the closed form has hard
///    applicability conditions), but the fallback is counted so the
///    `model.*.fallback` telemetry exposes it.
///  * Sim — legacy path: the iterative cache emulation of Algorithm 1 for
///    tile bounds and the trace-driven `AccessProgram` simulator for
///    autotuner scoring.
///  * Auto (default) — closed form whenever its applicability check
///    passes, emulation/simulation otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_SCOREMODE_H
#define LTP_MODEL_SCOREMODE_H

namespace ltp {
namespace model {

enum class ScoreMode {
  Analytic,
  Sim,
  Auto,
};

/// Parses "analytic" | "sim" | "auto" (anything else returns false and
/// leaves \p Out untouched).
inline bool parseScoreMode(const char *Text, ScoreMode &Out) {
  const char *A = "analytic", *S = "sim", *U = "auto";
  auto Eq = [](const char *X, const char *Y) {
    while (*X && *X == *Y) {
      ++X;
      ++Y;
    }
    return *X == *Y;
  };
  if (Eq(Text, A)) {
    Out = ScoreMode::Analytic;
    return true;
  }
  if (Eq(Text, S)) {
    Out = ScoreMode::Sim;
    return true;
  }
  if (Eq(Text, U)) {
    Out = ScoreMode::Auto;
    return true;
  }
  return false;
}

inline const char *scoreModeName(ScoreMode Mode) {
  switch (Mode) {
  case ScoreMode::Analytic:
    return "analytic";
  case ScoreMode::Sim:
    return "sim";
  case ScoreMode::Auto:
    return "auto";
  }
  return "auto";
}

} // namespace model
} // namespace ltp

#endif // LTP_MODEL_SCOREMODE_H
