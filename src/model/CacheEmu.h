//===- CacheEmu.h - cache emulation bound (Algorithm 1) ---------*- C++ -*-===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: emulates the placement of successive tile
/// rows (stride = the problem size of the row-major dimension) into the
/// sets of a cache level, together with the lines the hardware prefetchers
/// pull in alongside them, and returns the largest row count `maxTi` that
/// causes no interference (conflict) misses.
///
/// Prefetch handling follows the paper:
///  * when emulating the L1, every fetched row is extended by one line for
///    the next-line prefetcher (`Ti-1 = ceil(max(Ti-1 + lc, 2*lc) / lc)`);
///  * when emulating the L2, the constant-stride prefetcher may run up to
///    `L2maxpref` lines ahead issuing `L2pref` lines at a time, and the
///    effective number of sets is halved to reserve room for the
///    prefetched stream data;
///  * the effective associativity is `Liway / Nthreads` (SMT threads share
///    the level; on the ARM platform the divisor is NCores because the L2
///    is shared between cores, Section 5.1).
///
/// The slot count follows the paper literally: `Nsets = LiCS/(Liway*DTS)`
/// with the emulated cache indexed by line number (modulo Nsets). This is
/// looser than physical set-index arithmetic for power-of-two row strides
/// — deliberately so: it reproduces the paper's published tile bounds
/// (Listing 3's Ti = 32), and encodes the observation that the prefetchers
/// the model assumes are running ahead soften conflict behaviour relative
/// to naive set math. DESIGN.md discusses the choice.
///
//===----------------------------------------------------------------------===//

#ifndef LTP_MODEL_CACHEEMU_H
#define LTP_MODEL_CACHEEMU_H

#include "arch/ArchParams.h"

#include <cstdint>

namespace ltp {

/// Inputs of Algorithm 1.
struct CacheEmuParams {
  /// Geometry of the cache level being emulated.
  CacheParams Cache;
  /// L1 line size in bytes (defines lc together with DTS).
  int64_t L1LineBytes = 64;
  /// Element size in bytes (DTS).
  int64_t DTS = 4;
  /// Ti-1: the already-chosen tile width along the row (column) dimension,
  /// in elements.
  int64_t PrevTileElems = 0;
  /// Bi: problem size of the row-major dimension, in elements (the row
  /// stride of the emulated array).
  int64_t RowStrideElems = 0;
  /// Divisor of the effective associativity (threads per core, or cores
  /// for a shared L2).
  int64_t EffectiveWaysDivisor = 1;
  /// Base address of the array in elements (addr).
  int64_t BaseAddrElems = 0;
  /// L2 constant-stride prefetch degree; 0 when emulating the L1.
  int L2Pref = 0;
  /// Maximum prefetch distance in lines.
  int L2MaxPref = 0;
  /// True when emulating the L2 level (halves the effective set count).
  bool ForL2 = false;
  /// Upper bound on the result (the problem size of the emulated
  /// dimension).
  int64_t MaxRows = 0;
  /// Prefetch-unaware emulation (used by the TSS/TTS baselines and the
  /// ablation bench): no next-line padding, no stride-prefetch tracking,
  /// no set halving.
  bool NoPrefetchPadding = false;
};

/// Returns maxTi: the number of tile rows that fit without interference
/// misses, clamped to [1, MaxRows].
int64_t emulateMaxTileDim(const CacheEmuParams &Params);

} // namespace ltp

#endif // LTP_MODEL_CACHEEMU_H
