//===- ltp-opt.cpp - command-line driver for the optimizer -----------------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// The tool of Section 4: feed it an algorithm (one of the built-in
// benchmark definitions, or `all` for the whole suite) and a platform,
// get back the classification, the optimization schedule, the lowered
// loop nest and (optionally) the generated C — without running anything.
//
// Usage:
//   ltp-opt <benchmark>|all [--arch 5930k|6700|a15|host] [--size N]
//           [--schedule "<directives>"] [--emit-c] [--simulate]
//           [--score-mode analytic|sim|auto] [--no-nti] [--run]
//           [--compile] [--verify] [--lint] [--lint-fix] [--json]
//           [--explain] [--trace-json FILE]
//
// Exit codes: 0 success; 2 the schedule text was rejected (parse error,
// legality verifier, or a lint/verify diagnostic of Error severity); 1
// anything else (usage, unknown benchmark, missing compiler, internal
// failure). Scripts dispatch on the distinction: 2 means "fix your
// schedule", 1 means "fix your invocation or the tool". Warning-severity
// diagnostics print but exit 0.
//
// Examples:
//   ltp-opt matmul --size 2048 --arch 5930k
//   ltp-opt tpm --emit-c
//   ltp-opt matmul --schedule "split(i, i_t, i_i, 32); parallel(i_t);"
//   ltp-opt doitgen --simulate --arch a15
//   ltp-opt matmul --explain
//   ltp-opt all --simulate --trace-json trace.json
//
//===----------------------------------------------------------------------===//

#include "analysis/Legality.h"
#include "analysis/Lint.h"
#include "arch/ArchFile.h"
#include "benchmarks/PipelineRunner.h"
#include "core/Optimizer.h"
#include "ir/IRPrinter.h"
#include "lang/ScheduleText.h"
#include "model/ScoreMode.h"
#include "obs/Provenance.h"
#include "obs/Telemetry.h"
#include "support/ArgParse.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>

using namespace ltp;

namespace {

void printUsage() {
  std::printf(
      "usage: ltp-opt <benchmark>|all [options]\n"
      "\n"
      "benchmarks:");
  for (const BenchmarkDef &Def : allBenchmarks())
    std::printf(" %s", Def.Name.c_str());
  std::printf(
      "\n\noptions:\n"
      "  --arch 5930k|6700|a15|host   platform parameters (default host)\n"
      "  --arch-file <path>           load platform from a description "
      "file\n"
      "  --size N                     problem size (default: benchmark "
      "default)\n"
      "  --schedule \"...\"             apply a textual schedule instead "
      "of optimizing\n"
      "  --emit-c                     print the generated C kernel(s)\n"
      "  --simulate                   run the cache simulator and report "
      "misses\n"
      "  --score-mode analytic|sim|auto\n"
      "                               candidate scoring path: closed-form "
      "miss model,\n"
      "                               cache emulation/simulation, or "
      "closed-form with\n"
      "                               automatic fallback (default auto)\n"
      "  --no-nti                     disable non-temporal stores\n"
      "  --run                        JIT-compile and time the pipeline\n"
      "  --compile                    JIT-compile the pipeline into the\n"
      "                               shared kernel store (no timed runs)\n"
      "                               and print the .so paths\n"
      "  --verify                     print each stage's dependence graph "
      "and per-directive legality verdicts\n"
      "                               (errors exit 2, warnings exit 0)\n"
      "  --lint                       run the static prefetch-efficiency "
      "diagnostics\n"
      "                               over each stage's schedule and exit "
      "(errors\n"
      "                               exit 2, warnings exit 0)\n"
      "  --lint-fix                   apply the machine fix-its, re-verify "
      "the\n"
      "                               rewritten schedule, and re-lint it\n"
      "  --json                       with --lint: emit one "
      "machine-readable JSON\n"
      "                               line per benchmark instead of text\n"
      "  --explain                    log every candidate schedule the "
      "optimizer considered, with predicted misses and the accept/prune "
      "reason\n"
      "  --trace-json FILE            collect spans and write a "
      "Chrome-trace/Perfetto JSON on exit\n"
      "\n"
      "exit codes:\n"
      "  0  success (warning-severity diagnostics still print)\n"
      "  2  schedule rejected: --schedule text failed to parse, was\n"
      "     refused by the legality verifier, or --verify/--lint found an\n"
      "     Error-severity diagnostic\n"
      "  1  any other error (usage, unknown benchmark, missing compiler,\n"
      "     internal failure)\n");
}

ArchParams pickArch(const std::string &Name) {
  if (Name == "5930k")
    return intelI7_5930K();
  if (Name == "6700")
    return intelI7_6700();
  if (Name == "a15" || Name == "arm")
    return armCortexA15();
  return detectHost();
}

/// Prints the optimizer decision log collected since the last call (the
/// --explain flow). One block per optimized stage: classification, every
/// candidate with its predicted misses and accept/prune reason, and the
/// chosen schedule.
void printDecisions() {
  for (const obs::DecisionRecord &D : obs::takeDecisions()) {
    std::printf("explain %s: class=%s, %zu candidates\n", D.Stage.c_str(),
                D.Classification.c_str(), D.Candidates.size());
    for (const obs::CandidateRecord &C : D.Candidates) {
      std::printf("  [%s] %s", C.Accepted ? "accept" : "prune ",
                  C.Candidate.c_str());
      if (!C.ScoredBy.empty())
        std::printf(" scored-by=%s", C.ScoredBy.c_str());
      if (C.PredL1Misses >= 0.0)
        std::printf(" predL1=%.4g predL2=%.4g", C.PredL1Misses,
                    C.PredL2Misses);
      if (C.Cost >= 0.0)
        std::printf(" cost=%.4g", C.Cost);
      std::printf(" -- %s\n", C.Reason.c_str());
    }
    std::printf("  chosen: %s\n\n", D.Chosen.c_str());
  }
}

/// Prints one lint diagnostic as indented text, including its fix-it.
void printDiagnostic(const lint::Diagnostic &D, const std::string &Text) {
  std::printf("  %s %s @%zu+%zu: %s\n", lint::severityName(D.Sev),
              D.RuleId.c_str(), D.Offset, D.Length, D.Message.c_str());
  if (D.Length > 0 && D.Offset + D.Length <= Text.size())
    std::printf("    at: %s\n",
                Text.substr(D.Offset, D.Length).c_str());
  if (D.HasFixIt)
    std::printf("    fix-it: %s\n", D.Fix.Replacement.empty()
                                        ? "(delete)"
                                        : D.Fix.Replacement.c_str());
}

/// The --lint / --lint-fix driver. Lints the compute stage of every
/// pipeline stage — either the --schedule text just replayed or the
/// schedule the optimizer just chose. With --lint-fix the fix-its are
/// applied, the rewritten text is re-verified and re-linted, and the
/// residual report is what decides the exit code. Returns 0 when no
/// Error-severity rule fired, 2 otherwise.
int runLint(BenchmarkInstance &Instance, const BenchmarkDef *Def,
            const ArgParse &Args, const ArchParams &Arch,
            model::ScoreMode Mode) {
  lint::LintOptions Options;
  Options.Score = Mode;
  const bool Json = Args.has("json");
  bool AnyErrors = false;
  std::string Schedules, Diags;
  for (size_t S = 0; S != Instance.Stages.size(); ++S) {
    Func &F = Instance.Stages[S];
    int Stage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
    lint::LintReport Report = lint::lintStageSchedule(
        F, Stage, Instance.StageExtents[S], Arch, Options);
    if (Args.has("lint-fix") && !Report.clean()) {
      // One fix can expose the next diagnostic (appending a reorder
      // shadows the one it overrides), so iterate to a fixed point.
      for (int Round = 0; Round != 5 && !Report.clean(); ++Round) {
        std::string Fixed = lint::applyLintFixes(Report);
        if (Fixed == Report.ScheduleText)
          break; // nothing left is machine-fixable
        F.clearSchedules();
        auto R = applyVerifiedScheduleText(F, Stage, Fixed,
                                           Instance.StageExtents[S]);
        if (!R) {
          std::fprintf(stderr,
                       "error: fix-its produced an illegal schedule: %s\n",
                       R.getError().c_str());
          return 1;
        }
        Report = lint::lintStageSchedule(F, Stage, Instance.StageExtents[S],
                                         Arch, Options);
      }
      if (!Json)
        std::printf("lint stage %zu: fixed schedule: %s\n", S,
                    Report.ScheduleText.c_str());
    }
    if (Json) {
      if (S)
        Schedules += ", ";
      Schedules += "\"" + Report.ScheduleText + "\"";
      for (const lint::Diagnostic &D : Report.Diagnostics) {
        if (!Diags.empty())
          Diags += ", ";
        Diags += lint::diagnosticJson(D, static_cast<int>(S));
      }
    } else {
      std::printf("lint stage %zu (%s): %s\n", S, F.name().c_str(),
                  Report.clean()
                      ? "clean"
                      : strFormat("%zu diagnostic(s)",
                                  Report.Diagnostics.size())
                            .c_str());
      for (const lint::Diagnostic &D : Report.Diagnostics)
        printDiagnostic(D, Report.ScheduleText);
    }
    AnyErrors |= Report.hasErrors();
  }
  if (Json)
    std::printf("{\"kernel\": \"%s\", \"arch\": \"%s\", \"schedules\": "
                "[%s], \"diagnostics\": [%s]}\n",
                Def->Name.c_str(), Arch.Name.c_str(), Schedules.c_str(),
                Diags.c_str());
  return AnyErrors ? 2 : 0;
}

int processBenchmark(const BenchmarkDef *Def, const ArgParse &Args,
                     const ArchParams &Arch) {
  int64_t Size = Args.getInt("size", Def->DefaultSize);
  BenchmarkInstance Instance = Def->Create(Size);

  // Validate before any output so a typo'd mode fails fast.
  model::ScoreMode Mode = model::ScoreMode::Auto;
  if (!model::parseScoreMode(Args.getString("score-mode", "auto").c_str(),
                             Mode)) {
    std::fprintf(stderr,
                 "error: bad --score-mode '%s' (want analytic|sim|auto)\n",
                 Args.getString("score-mode", "").c_str());
    return 1;
  }

  std::printf("benchmark : %s (%s), size %lld\n", Def->Name.c_str(),
              Def->Description.c_str(), static_cast<long long>(Size));
  std::printf("platform  : %s\n\n", describe(Arch).c_str());

  if (Args.has("schedule")) {
    // Replay a user-provided schedule on the compute stage of the last
    // pipeline stage.
    Func &F = Instance.Stages.back();
    F.clearSchedules();
    int Stage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
    auto R = applyVerifiedScheduleText(F, Stage, Args.getString("schedule", ""),
                                       Instance.StageExtents.back());
    if (!R) {
      std::fprintf(stderr, "error: bad schedule: %s\n",
                   R.getError().c_str());
      return 2; // distinct exit: the *schedule* is at fault, not the tool
    }
    std::printf("schedule (user): %s\n\n",
                printSchedule(F, Stage).c_str());
  } else {
    for (size_t S = 0; S != Instance.Stages.size(); ++S) {
      OptimizerOptions Options;
      Options.EnableNonTemporal = !Args.has("no-nti");
      Options.Temporal.Score = Mode;
      OptimizationResult R = optimize(
          Instance.Stages[S], Instance.StageExtents[S], Arch, Options);
      std::printf("stage %zu (%s): class=%s, %.2f ms to optimize\n  %s\n",
                  S, Instance.Stages[S].name().c_str(),
                  statementClassName(R.Class.Kind), R.RuntimeMillis,
                  R.Description.c_str());
      int Stage = Instance.Stages[S].numUpdates() > 0
                      ? Instance.Stages[S].numUpdates() - 1
                      : -1;
      std::printf("  directives: %s\n",
                  printSchedule(Instance.Stages[S], Stage).c_str());
    }
    std::printf("\n");
    if (obs::explainEnabled())
      printDecisions();
  }

  if (Args.has("lint") || Args.has("lint-fix"))
    return runLint(Instance, Def, Args, Arch, Mode);

  if (Args.has("verify")) {
    bool AnyErrors = false;
    for (size_t S = 0; S != Instance.Stages.size(); ++S) {
      const Func &F = Instance.Stages[S];
      int Stage = F.numUpdates() > 0 ? F.numUpdates() - 1 : -1;
      analysis::LegalityReport Report = analysis::verifyStageSchedule(
          F, Stage, Instance.StageExtents[S]);
      std::printf("verify stage %zu (%s):\n%s", S, F.name().c_str(),
                  Report.Graph.print().c_str());
      if (Report.Verdicts.empty())
        std::printf("  (no directives)\n");
      for (const analysis::DirectiveVerdict &V : Report.Verdicts) {
        if (V.Legal)
          std::printf("  %-32s legal\n", V.Directive.c_str());
        else
          std::printf("  %-32s %s: %s\n", V.Directive.c_str(),
                      V.Sev == analysis::Severity::Error ? "ILLEGAL"
                                                         : "warning",
                      V.Message.c_str());
      }
      std::printf("\n");
      AnyErrors |= Report.hasErrors();
    }
    // User schedules were rejected before this point, so errors here mean
    // the optimizer itself produced an illegal schedule. Warning verdicts
    // (e.g. an NT store the nest re-reads) print above but do not fail:
    // only Error severity takes the schedule-rejected exit.
    if (AnyErrors) {
      std::fprintf(stderr, "error: schedule failed verification\n");
      return 2;
    }
  }

  std::printf("lowered loop nest (final stage):\n%s\n",
              ir::printStmt(lowerPipeline(Instance).back()).c_str());

  if (Args.has("emit-c")) {
    std::vector<BufferBinding> Signature;
    for (const auto &[BufName, Ref] : Instance.Buffers)
      Signature.push_back(BufferBinding::fromRef(BufName, Ref));
    CodeGenOptions Options;
    Options.EnableNonTemporal = !Args.has("no-nti");
    auto Lowered = lowerPipeline(Instance);
    for (size_t S = 0; S != Lowered.size(); ++S) {
      std::printf("/* ---- stage %zu ---- */\n", S);
      std::printf("%s\n",
                  generateC(Lowered[S], Signature, "ltp_kernel", Options)
                      .c_str());
    }
  }

  if (Args.has("simulate")) {
    std::printf("simulating on the %s configuration...\n",
                Arch.Name.c_str());
    SimResult Sim = simulatePipeline(Instance, Arch);
    std::printf("  accesses      : %llu\n",
                static_cast<unsigned long long>(Sim.Accesses));
    std::printf("  L1 miss rate  : %.3f%% (prefetch hits %llu)\n",
                100.0 * Sim.Stats.L1.missRate(),
                static_cast<unsigned long long>(Sim.Stats.L1.PrefetchHits));
    std::printf("  L2 miss rate  : %.3f%%\n",
                100.0 * Sim.Stats.L2.missRate());
    std::printf("  DRAM lines    : %llu\n",
                static_cast<unsigned long long>(Sim.Stats.memoryTraffic()));
    std::printf("  est. cycles   : %.4g\n\n", Sim.EstimatedCycles);
  }

  if (Args.has("run")) {
    if (!jitAvailable()) {
      std::fprintf(stderr, "error: no host C compiler for --run\n");
      return 1;
    }
    JITCompiler Compiler;
    CodeGenOptions Options;
    Options.EnableNonTemporal = !Args.has("no-nti");
    auto Pipeline = compilePipeline(Instance, Compiler, Options);
    if (!Pipeline) {
      std::fprintf(stderr, "error: %s\n", Pipeline.getError().c_str());
      return 1;
    }
    Pipeline->run(Instance);
    double Seconds = timeBestOf(3, [&] { Pipeline->run(Instance); });
    std::printf("wall clock: %.3f ms", Seconds * 1e3);
    if (Instance.Work > 0)
      std::printf("  (%.2f Gop/s)", Instance.Work / Seconds * 1e-9);
    std::printf("\n");
  }

  if (Args.has("compile")) {
    // The one-process-per-request baseline of bench/serve_load: produce a
    // ready-to-dlopen kernel in the shared content-addressed store, skip
    // the timed runs.
    if (!jitAvailable()) {
      std::fprintf(stderr, "error: no host C compiler for --compile\n");
      return 1;
    }
    JITCompiler Compiler;
    CodeGenOptions Options;
    Options.EnableNonTemporal = !Args.has("no-nti");
    auto Pipeline = compilePipeline(Instance, Compiler, Options);
    if (!Pipeline) {
      std::fprintf(stderr, "error: %s\n", Pipeline.getError().c_str());
      return 1;
    }
    for (size_t S = 0; S != Pipeline->Kernels.size(); ++S)
      std::printf("kernel so [%zu]: %s\n", S,
                  Pipeline->Kernels[S].sharedObjectPath().c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  if (Args.positional().empty() || Args.has("help")) {
    printUsage();
    return Args.has("help") ? 0 : 1;
  }
  const std::string Name = Args.positional().front();
  std::vector<const BenchmarkDef *> Targets;
  if (Name == "all") {
    for (const BenchmarkDef &Def : allBenchmarks())
      Targets.push_back(&Def);
  } else {
    const BenchmarkDef *Def = findBenchmark(Name);
    if (!Def) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
      printUsage();
      return 1;
    }
    Targets.push_back(Def);
  }

  if (Args.has("trace-json"))
    obs::setTracingEnabled(true);
  if (Args.has("explain"))
    obs::setExplainEnabled(true);

  ArchParams Arch = pickArch(Args.getString("arch", "host"));
  if (Args.has("arch-file")) {
    auto Loaded = loadArchParams(Args.getString("arch-file", ""));
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.getError().c_str());
      return 1;
    }
    Arch = *Loaded;
  }

  int Rc = 0;
  for (const BenchmarkDef *Def : Targets) {
    Rc = processBenchmark(Def, Args, Arch);
    if (Rc != 0)
      break;
  }

  // Scoring-path telemetry: how many candidates each path handled and how
  // often the closed-form tile bound applied.
  if (Rc == 0 && !Args.has("schedule")) {
    int64_t Cand = 0, CandAnalytic = 0, CandSim = 0;
    int64_t BoundAnalytic = 0, BoundEmulated = 0, BoundFallback = 0;
    for (const auto &[CounterName, Value] : obs::counterSnapshot()) {
      if (CounterName == "opt.candidates")
        Cand = Value;
      else if (CounterName == "opt.candidates.analytic")
        CandAnalytic = Value;
      else if (CounterName == "opt.candidates.sim")
        CandSim = Value;
      else if (CounterName == "model.bound.analytic")
        BoundAnalytic = Value;
      else if (CounterName == "model.bound.emulated")
        BoundEmulated = Value;
      else if (CounterName == "model.bound.fallback")
        BoundFallback = Value;
    }
    std::printf("telemetry : %lld candidates scored (analytic %lld, "
                "sim %lld); tile bounds: analytic %lld, emulated %lld, "
                "fallback %lld\n",
                static_cast<long long>(Cand),
                static_cast<long long>(CandAnalytic),
                static_cast<long long>(CandSim),
                static_cast<long long>(BoundAnalytic),
                static_cast<long long>(BoundEmulated),
                static_cast<long long>(BoundFallback));
  }

  if (Args.has("trace-json")) {
    std::string Path = Args.getString("trace-json", "trace.json");
    if (Path.empty())
      Path = "trace.json";
    std::string Error;
    if (!obs::writeTrace(Path, &Error)) {
      std::fprintf(stderr, "error: cannot write trace %s: %s\n",
                   Path.c_str(), Error.c_str());
      return 1;
    }
    std::printf("trace     : %s (%zu events)\n", Path.c_str(),
                obs::traceEventCount());
  }
  return Rc;
}
