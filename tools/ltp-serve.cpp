//===- ltp-serve.cpp - optimization-as-a-service daemon and client ---------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// Daemon: long-running optimization service on a Unix-domain socket.
// Identical requests — in flight or already served — share one
// optimization and one kernel compile against the content-addressed
// store, so a fleet of build jobs asking for the same (kernel, platform)
// pays for it once.
//
//   ltp-serve --socket /tmp/ltp.sock
//   ltp-serve --socket /tmp/ltp.sock --score-mode analytic --no-compile
//
// Client: one-shot requests against a running daemon (for scripts and CI;
// anything speaking newline-delimited JSON over the socket works too).
//
//   ltp-serve --connect /tmp/ltp.sock --kernel matmul --arch 6700
//   ltp-serve --connect /tmp/ltp.sock --kernel matmul \
//             --schedule "split(i, it, ii, 32); parallel(it);"
//   ltp-serve --connect /tmp/ltp.sock --request '{"op":"optimize",...}'
//   ltp-serve --connect /tmp/ltp.sock --stats | --ping | --shutdown
//
// Client exit codes mirror ltp-opt: 0 success, 2 the daemon classified
// the schedule illegal, 1 anything else (connect failure, bad request,
// internal error).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/ArgParse.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace ltp;
using namespace ltp::serve;

namespace {

std::atomic<bool> SignalStop{false};

void onSignal(int) { SignalStop.store(true); }

void printUsage() {
  std::printf(
      "usage: ltp-serve --socket PATH [daemon options]\n"
      "       ltp-serve --connect PATH [client options]\n"
      "\n"
      "daemon options:\n"
      "  --socket PATH       listen on this Unix-domain socket\n"
      "  --score-mode M      force analytic|sim|auto on every request\n"
      "  --no-compile        serve schedules only, never compile kernels\n"
      "\n"
      "client options:\n"
      "  --connect PATH      daemon socket to talk to\n"
      "  --kernel NAME       optimize this benchmark kernel\n"
      "  --size N            problem size (0 = kernel default)\n"
      "  --arch NAME         5930k|6700|a15|host (default host)\n"
      "  --schedule \"...\"    replay this schedule instead of optimizing\n"
      "  --lint              request static diagnostics instead of\n"
      "                      compiled kernels (op \"lint\")\n"
      "  --score-mode M      analytic|sim|auto\n"
      "  --no-nti            disable non-temporal stores\n"
      "  --no-compile        skip kernel compilation for this request\n"
      "  --id TEXT           request id echoed in the response\n"
      "  --request JSON      send this raw request line instead\n"
      "  --stats             dump the daemon's counters\n"
      "  --ping              liveness check\n"
      "  --shutdown          stop the daemon\n"
      "  --timeout-ms N      connect retry budget (default 3000)\n"
      "\n"
      "exit codes (client): 0 success; 2 schedule rejected as illegal;\n"
      "  1 anything else (connect failure, bad request, internal error)\n");
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Builds the request line from convenience flags.
std::string buildRequest(const ArgParse &Args) {
  if (Args.has("request"))
    return Args.getString("request", "");
  if (Args.has("stats"))
    return "{\"op\": \"stats\"}";
  if (Args.has("ping"))
    return "{\"op\": \"ping\"}";
  if (Args.has("shutdown"))
    return "{\"op\": \"shutdown\"}";
  if (!Args.has("kernel"))
    return "";
  std::string Req = std::string("{\"op\": \"") +
                    (Args.has("lint") ? "lint" : "optimize") +
                    "\", \"kernel\": \"" +
                    jsonEscape(Args.getString("kernel", "")) + "\"";
  if (Args.has("size"))
    Req += ", \"size\": " + std::to_string(Args.getInt("size", 0));
  if (Args.has("arch"))
    Req += ", \"arch\": \"" + jsonEscape(Args.getString("arch", "host")) +
           "\"";
  if (Args.has("schedule"))
    Req += ", \"schedule\": \"" +
           jsonEscape(Args.getString("schedule", "")) + "\"";
  if (Args.has("score-mode"))
    Req += ", \"score_mode\": \"" +
           jsonEscape(Args.getString("score-mode", "auto")) + "\"";
  if (Args.has("no-nti"))
    Req += ", \"nti\": false";
  if (Args.has("no-compile"))
    Req += ", \"compile\": false";
  if (Args.has("id"))
    Req += ", \"id\": \"" + jsonEscape(Args.getString("id", "")) + "\"";
  Req += "}";
  return Req;
}

/// Connects to \p Path, retrying until \p TimeoutMs elapses (the daemon
/// may still be binding when a script races it).
int connectWithRetry(const std::string &Path, long TimeoutMs) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  long WaitedMs = 0;
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    ::close(Fd);
    if (WaitedMs >= TimeoutMs)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    WaitedMs += 50;
  }
}

int runClient(const ArgParse &Args) {
  std::string Line = buildRequest(Args);
  if (Line.empty()) {
    std::fprintf(stderr, "error: nothing to send (want --kernel, "
                         "--request, --stats, --ping or --shutdown)\n");
    return 1;
  }
  std::string Path = Args.getString("connect", "");
  int Fd = connectWithRetry(Path, Args.getInt("timeout-ms", 3000));
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n", Path.c_str());
    return 1;
  }
  Line += "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: write: %s\n", std::strerror(errno));
      ::close(Fd);
      return 1;
    }
    Off += static_cast<size_t>(N);
  }

  std::string Reply;
  char Chunk[4096];
  while (Reply.find('\n') == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Reply.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t Nl = Reply.find('\n');
  if (Nl == std::string::npos) {
    std::fprintf(stderr, "error: daemon closed the connection without "
                         "replying\n");
    return 1;
  }
  Reply.resize(Nl);
  std::printf("%s\n", Reply.c_str());
  if (Reply.find("\"ok\": true") != std::string::npos)
    return 0;
  if (Reply.find("\"kind\": \"illegal_schedule\"") != std::string::npos)
    return 2;
  return 1;
}

int runDaemon(const ArgParse &Args) {
  ServiceOptions Opts;
  Opts.ForceScoreMode = Args.getString("score-mode", "");
  Opts.DisableCompile = Args.has("no-compile");

  Server Srv(Args.getString("socket", ""), Opts);
  std::string Error;
  if (!Srv.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill us

  std::printf("ltp-serve: listening on %s\n", Srv.socketPath().c_str());
  std::fflush(stdout);
  Srv.wait(&SignalStop);
  std::printf("ltp-serve: stopped\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  if (Args.has("help")) {
    printUsage();
    return 0;
  }
  if (Args.has("connect"))
    return runClient(Args);
  if (Args.has("socket"))
    return runDaemon(Args);
  printUsage();
  return 1;
}
