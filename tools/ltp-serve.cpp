//===- ltp-serve.cpp - optimization-as-a-service daemon and client ---------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// Daemon: long-running optimization service on a Unix-domain socket.
// Identical requests — in flight or already served — share one
// optimization and one kernel compile against the content-addressed
// store, so a fleet of build jobs asking for the same (kernel, platform)
// pays for it once.
//
//   ltp-serve --socket /tmp/ltp.sock
//   ltp-serve --socket /tmp/ltp.sock --score-mode analytic --no-compile
//
// Client: one-shot requests against a running daemon (for scripts and CI;
// anything speaking newline-delimited JSON over the socket works too).
//
//   ltp-serve --connect /tmp/ltp.sock --kernel matmul --arch 6700
//   ltp-serve --connect /tmp/ltp.sock --kernel matmul \
//             --schedule "split(i, it, ii, 32); parallel(it);"
//   ltp-serve --connect /tmp/ltp.sock --request '{"op":"optimize",...}'
//   ltp-serve --connect /tmp/ltp.sock --stats | --ping | --shutdown
//
// Client exit codes mirror ltp-opt: 0 success, 2 the daemon classified
// the schedule illegal, 1 anything else (connect failure, bad request,
// internal error).
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/JsonCheck.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "serve/Server.h"
#include "support/ArgParse.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace ltp;
using namespace ltp::serve;

namespace {

std::atomic<bool> SignalStop{false};
std::atomic<bool> FlightDumpRequested{false};

void onSignal(int) { SignalStop.store(true); }

// SIGUSR2 only sets a flag; the actual dump (file I/O, JSON rendering)
// runs on the wait() thread's poll callback, never in signal context.
void onDumpSignal(int) { FlightDumpRequested.store(true); }

void printUsage() {
  std::printf(
      "usage: ltp-serve --socket PATH [daemon options]\n"
      "       ltp-serve --connect PATH [client options]\n"
      "\n"
      "daemon options:\n"
      "  --socket PATH       listen on this Unix-domain socket\n"
      "  --score-mode M      force analytic|sim|auto on every request\n"
      "  --no-compile        serve schedules only, never compile kernels\n"
      "  --log-json[=FILE]   structured JSON logs to FILE (default stderr)\n"
      "  --log-level L       debug|info|warn|error|off (default info when\n"
      "                      --log-json is set; LTP_LOG otherwise)\n"
      "  --slow-ms N         slow-request log threshold in ms (0 = off)\n"
      "  --metrics-file PATH periodic Prometheus-text snapshots here\n"
      "  --metrics-interval-s N  snapshot cadence (default 10)\n"
      "  --flight-dump PATH  SIGUSR2 writes the flight-recorder ring here\n"
      "\n"
      "client options:\n"
      "  --connect PATH      daemon socket to talk to\n"
      "  --kernel NAME       optimize this benchmark kernel\n"
      "  --size N            problem size (0 = kernel default)\n"
      "  --arch NAME         5930k|6700|a15|host (default host)\n"
      "  --schedule \"...\"    replay this schedule instead of optimizing\n"
      "  --lint              request static diagnostics instead of\n"
      "                      compiled kernels (op \"lint\")\n"
      "  --score-mode M      analytic|sim|auto\n"
      "  --no-nti            disable non-temporal stores\n"
      "  --no-compile        skip kernel compilation for this request\n"
      "  --id TEXT           request id echoed in the response\n"
      "  --request JSON      send this raw request line instead\n"
      "  --stats             dump the daemon's counters\n"
      "  --metrics           scrape Prometheus-text metrics (prints the\n"
      "                      exposition, not the JSON envelope)\n"
      "  --dump              dump the daemon's flight-recorder ring\n"
      "  --ping              liveness check\n"
      "  --shutdown          stop the daemon\n"
      "  --timeout-ms N      connect retry budget (default 3000)\n"
      "\n"
      "exit codes (client): 0 success; 2 schedule rejected as illegal;\n"
      "  1 anything else (connect failure, bad request, internal error)\n");
}

using obs::jsonEscape;

/// Builds the request line from convenience flags.
std::string buildRequest(const ArgParse &Args) {
  if (Args.has("request"))
    return Args.getString("request", "");
  if (Args.has("stats"))
    return "{\"op\": \"stats\"}";
  if (Args.has("metrics"))
    return "{\"op\": \"metrics\"}";
  if (Args.has("dump"))
    return "{\"op\": \"dump\"}";
  if (Args.has("ping"))
    return "{\"op\": \"ping\"}";
  if (Args.has("shutdown"))
    return "{\"op\": \"shutdown\"}";
  if (!Args.has("kernel"))
    return "";
  std::string Req = std::string("{\"op\": \"") +
                    (Args.has("lint") ? "lint" : "optimize") +
                    "\", \"kernel\": \"" +
                    jsonEscape(Args.getString("kernel", "")) + "\"";
  if (Args.has("size"))
    Req += ", \"size\": " + std::to_string(Args.getInt("size", 0));
  if (Args.has("arch"))
    Req += ", \"arch\": \"" + jsonEscape(Args.getString("arch", "host")) +
           "\"";
  if (Args.has("schedule"))
    Req += ", \"schedule\": \"" +
           jsonEscape(Args.getString("schedule", "")) + "\"";
  if (Args.has("score-mode"))
    Req += ", \"score_mode\": \"" +
           jsonEscape(Args.getString("score-mode", "auto")) + "\"";
  if (Args.has("no-nti"))
    Req += ", \"nti\": false";
  if (Args.has("no-compile"))
    Req += ", \"compile\": false";
  if (Args.has("id"))
    Req += ", \"id\": \"" + jsonEscape(Args.getString("id", "")) + "\"";
  Req += "}";
  return Req;
}

/// Connects to \p Path, retrying until \p TimeoutMs elapses (the daemon
/// may still be binding when a script races it).
int connectWithRetry(const std::string &Path, long TimeoutMs) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  long WaitedMs = 0;
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    ::close(Fd);
    if (WaitedMs >= TimeoutMs)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    WaitedMs += 50;
  }
}

int runClient(const ArgParse &Args) {
  std::string Line = buildRequest(Args);
  if (Line.empty()) {
    std::fprintf(stderr,
                 "error: nothing to send (want --kernel, --request, "
                 "--stats, --metrics, --dump, --ping or --shutdown)\n");
    return 1;
  }
  std::string Path = Args.getString("connect", "");
  int Fd = connectWithRetry(Path, Args.getInt("timeout-ms", 3000));
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n", Path.c_str());
    return 1;
  }
  Line += "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: write: %s\n", std::strerror(errno));
      ::close(Fd);
      return 1;
    }
    Off += static_cast<size_t>(N);
  }

  std::string Reply;
  char Chunk[4096];
  while (Reply.find('\n') == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Reply.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t Nl = Reply.find('\n');
  if (Nl == std::string::npos) {
    std::fprintf(stderr, "error: daemon closed the connection without "
                         "replying\n");
    return 1;
  }
  Reply.resize(Nl);
  if (Args.has("metrics") &&
      Reply.find("\"ok\": true") != std::string::npos) {
    // Unwrap the exposition text from the JSON envelope so the output
    // is directly scrapeable (and pipeable into ltp-metrics-check).
    std::string ParseError;
    std::unique_ptr<obs::JsonValue> Doc = obs::parseJson(Reply, &ParseError);
    const obs::JsonValue *Text = Doc ? Doc->find("metrics") : nullptr;
    if (!Text || !Text->isString()) {
      std::fprintf(stderr, "error: malformed metrics response: %s\n",
                   ParseError.empty() ? "no \"metrics\" string field"
                                      : ParseError.c_str());
      return 1;
    }
    std::fputs(Text->StringValue.c_str(), stdout);
    return 0;
  }
  std::printf("%s\n", Reply.c_str());
  if (Reply.find("\"ok\": true") != std::string::npos)
    return 0;
  if (Reply.find("\"kind\": \"illegal_schedule\"") != std::string::npos)
    return 2;
  return 1;
}

/// Writes the flight-recorder ring to \p Path (whole-file replace).
void writeFlightDump(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "ltp-serve: cannot write flight dump %s: %s\n",
                 Path.c_str(), std::strerror(errno));
    return;
  }
  std::string Json = obs::flightRecorder().dumpJson();
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  if (obs::logEnabled(obs::LogLevel::Info))
    obs::logEvent(obs::LogLevel::Info, "serve", "flight dump written",
                  {{"path", Path}});
}

int runDaemon(const ArgParse &Args) {
  // Observability setup happens before the socket binds so the very
  // first request is already logged and measured.
  if (Args.has("log-json")) {
    std::string LogPath = Args.getString("log-json", "");
    if (!LogPath.empty() && !obs::setLogFile(LogPath)) {
      std::fprintf(stderr, "error: cannot open log file %s\n",
                   LogPath.c_str());
      return 1;
    }
    if (obs::logLevel() == obs::LogLevel::Off)
      obs::setLogLevel(obs::LogLevel::Info);
  }
  if (Args.has("log-level")) {
    std::string LevelText = Args.getString("log-level", "");
    obs::LogLevel Level = obs::parseLogLevel(LevelText);
    if (Level == obs::LogLevel::Off && LevelText != "off") {
      std::fprintf(stderr, "error: bad --log-level (want debug|info|warn|"
                           "error|off)\n");
      return 1;
    }
    obs::setLogLevel(Level);
  }
  if (Args.has("slow-ms"))
    obs::setSlowRequestThresholdMs(Args.getDouble("slow-ms", 0.0));

  ServiceOptions Opts;
  Opts.ForceScoreMode = Args.getString("score-mode", "");
  Opts.DisableCompile = Args.has("no-compile");

  Server Srv(Args.getString("socket", ""), Opts);
  std::string Error;
  if (!Srv.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::unique_ptr<obs::MetricsSnapshotter> Snapshotter;
  if (Args.has("metrics-file"))
    Snapshotter = std::make_unique<obs::MetricsSnapshotter>(
        Args.getString("metrics-file", ""),
        Args.getInt("metrics-interval-s", 10));

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGUSR2, onDumpSignal);
  std::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill us

  std::string FlightDumpPath = Args.getString("flight-dump", "");
  auto Poll = [&FlightDumpPath] {
    if (FlightDumpRequested.exchange(false) && !FlightDumpPath.empty())
      writeFlightDump(FlightDumpPath);
  };

  std::printf("ltp-serve: listening on %s\n", Srv.socketPath().c_str());
  std::fflush(stdout);
  if (obs::logEnabled(obs::LogLevel::Info))
    obs::logEvent(obs::LogLevel::Info, "serve", "listening",
                  {{"socket", Srv.socketPath()}});
  Srv.wait(&SignalStop, Poll);
  if (Snapshotter)
    Snapshotter->stop(); // final snapshot before the exit message
  std::printf("ltp-serve: stopped\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  if (Args.has("help")) {
    printUsage();
    return 0;
  }
  if (Args.has("connect"))
    return runClient(Args);
  if (Args.has("socket"))
    return runDaemon(Args);
  printUsage();
  return 1;
}
