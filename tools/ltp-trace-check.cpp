//===- ltp-trace-check.cpp - validate a Chrome-trace JSON file ------------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// Small standalone checker for the trace files written by --trace-json:
// parses the JSON with the project's own parser and validates the
// Chrome-trace-event structure Perfetto expects (traceEvents array, "X"
// spans with name/ts/dur/pid/tid, "C" counters with args, "M" metadata).
// CI runs it over the traced fig4 smoke so a malformed trace fails the
// build rather than failing silently in the viewer.
//
// Usage: ltp-trace-check <trace.json> [--require-span NAME]...
//
//===----------------------------------------------------------------------===//

#include "obs/JsonCheck.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

using namespace ltp;

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  if (Args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ltp-trace-check <trace.json> "
                 "[--require-span NAME]\n");
    return 1;
  }
  const std::string Path = Args.positional().front();

  std::string Summary;
  std::string Error;
  if (!obs::checkTraceFile(Path, &Summary, &Error)) {
    std::fprintf(stderr, "ltp-trace-check: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }

  // Optional structural requirement: the trace must contain at least one
  // span with the given name (e.g. --require-span opt.optimize proves the
  // optimizer layer was traced).
  if (Args.has("require-span")) {
    std::ifstream In(Path);
    std::ostringstream Text;
    Text << In.rdbuf();
    std::unique_ptr<obs::JsonValue> Root = obs::parseJson(Text.str(), &Error);
    if (!Root) {
      std::fprintf(stderr, "ltp-trace-check: %s: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    const std::string Wanted = Args.getString("require-span", "");
    bool Found = false;
    if (const obs::JsonValue *Events = Root->find("traceEvents"))
      for (const obs::JsonValue &E : Events->Elements) {
        const obs::JsonValue *Ph = E.find("ph");
        const obs::JsonValue *Name = E.find("name");
        if (Ph && Name && Ph->StringValue == "X" &&
            Name->StringValue == Wanted) {
          Found = true;
          break;
        }
      }
    if (!Found) {
      std::fprintf(stderr,
                   "ltp-trace-check: %s: no span named '%s' in trace\n",
                   Path.c_str(), Wanted.c_str());
      return 1;
    }
  }

  std::printf("%s: OK (%s)\n", Path.c_str(), Summary.c_str());
  return 0;
}
