//===- ltp-metrics-check.cpp - validate a Prometheus metrics file ---------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// Standalone checker for the Prometheus text exposition written by the
// `metrics` serve op and --metrics-file snapshots: validates the format
// line by line (TYPE declarations, sample grammar) and the histogram
// invariants the quantile math depends on (cumulative buckets, exactly
// one trailing +Inf equal to _count, finite _sum). CI scrapes a live
// daemon and runs this so a malformed exposition fails the build rather
// than failing silently in a scrape pipeline.
//
// Usage: ltp-metrics-check <metrics.txt> [--require-metric NAME[,NAME...]]
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsCheck.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace ltp;

namespace {

/// Splits a comma-separated list, dropping empty entries.
std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  std::string Cur;
  std::istringstream In(Text);
  while (std::getline(In, Cur, ','))
    if (!Cur.empty())
      Out.push_back(Cur);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParse Args(Argc, Argv);
  if (Args.positional().empty()) {
    std::fprintf(stderr, "usage: ltp-metrics-check <metrics.txt> "
                         "[--require-metric NAME[,NAME...]]\n");
    return 1;
  }
  const std::string Path = Args.positional().front();

  std::string Summary;
  std::string Error;
  if (!obs::checkMetricsFile(Path, &Summary, &Error)) {
    std::fprintf(stderr, "ltp-metrics-check: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }

  // Optional structural requirement: the exposition must declare every
  // named family (e.g. --require-metric ltp_serve_request_ms proves the
  // latency histogram made it onto the scrape surface).
  if (Args.has("require-metric")) {
    std::ifstream In(Path);
    std::ostringstream Text;
    Text << In.rdbuf();
    std::set<std::string> Families;
    for (const std::string &Name : obs::metricFamilyNames(Text.str()))
      Families.insert(Name);
    for (const std::string &Wanted :
         splitList(Args.getString("require-metric", ""))) {
      if (!Families.count(Wanted)) {
        std::fprintf(stderr,
                     "ltp-metrics-check: %s: no metric family named '%s'\n",
                     Path.c_str(), Wanted.c_str());
        return 1;
      }
    }
  }

  std::printf("%s: OK (%s)\n", Path.c_str(), Summary.c_str());
  return 0;
}
