//===- ltp-bench-diff.cpp - BENCH_*.json regression gate ------------------===//
//
// Part of the LTP project (CGO'18 prefetch-aware loop transformations).
//
// Compares a bench's machine-readable report (--json output) against a
// committed baseline and exits nonzero when any row regresses beyond the
// threshold. Rows are matched by (bench, config); the compared metric
// defaults to best_s (lower is better) and can be any numeric field of
// the row, including a dotted path into nested objects (serve_load's
// `latency.p99`) — for cross-machine CI gates prefer a ratio metric such
// as table5's `speedup` with --higher-better, which cancels the host's
// absolute speed out of the comparison.
//
//   ltp-bench-diff baseline.json current.json \
//       --metric speedup --higher-better --threshold 0.2
//
// A report whose top level carries a "skipped" marker (perf_event or JIT
// unavailable — see bench/Harness.h reportSkipped) compares as empty and
// passes: an environment skip is not a regression. Rows present in only
// one of the two files are reported but do not fail the gate.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonCheck.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using ltp::obs::JsonValue;
using ltp::obs::parseJson;

namespace {

struct Options {
  std::string BaselinePath;
  std::string CurrentPath;
  std::string Metric = "best_s";
  double Threshold = 0.2;
  bool HigherBetter = false;
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <baseline.json> <current.json> [--metric NAME]\n"
      "          [--threshold FRAC] [--higher-better]\n"
      "\n"
      "Fails (exit 1) when any (bench, config) row's metric regresses\n"
      "by more than FRAC (default 0.2 = 20%%) relative to the baseline.\n"
      "Lower is better by default; --higher-better inverts the sense\n"
      "(use for ratio metrics like table5's speedup).\n",
      Argv0);
}

/// Loads one report; exits with a diagnostic on unreadable/malformed
/// input. Returns null only for reports marked "skipped".
std::unique_ptr<JsonValue> loadReport(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "ltp-bench-diff: cannot read %s\n", Path.c_str());
    std::exit(2);
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  std::unique_ptr<JsonValue> Root = parseJson(Buf.str(), &Error);
  if (!Root || !Root->isObject()) {
    std::fprintf(stderr, "ltp-bench-diff: %s: %s\n", Path.c_str(),
                 Error.empty() ? "not a JSON object" : Error.c_str());
    std::exit(2);
  }
  if (const JsonValue *Skip = Root->find("skipped")) {
    std::printf("%s: skipped (%s) — nothing to compare\n", Path.c_str(),
                Skip->isString() ? Skip->StringValue.c_str() : "?");
    return nullptr;
  }
  return Root;
}

/// Resolves \p Metric against \p Row, descending through nested objects
/// at each '.' ("latency.p99" -> Row["latency"]["p99"]). A plain name
/// with no dots is a direct member lookup, so field names containing
/// dots keep working when no nested object shadows them.
const JsonValue *findMetric(const JsonValue &Row, const std::string &Metric) {
  if (const JsonValue *Direct = Row.find(Metric))
    return Direct;
  const JsonValue *Node = &Row;
  size_t Start = 0;
  while (Node) {
    size_t Dot = Metric.find('.', Start);
    if (Dot == std::string::npos)
      return Node->find(Metric.substr(Start));
    Node = Node->find(Metric.substr(Start, Dot - Start));
    Start = Dot + 1;
  }
  return nullptr;
}

/// (bench, config) -> metric value for every row carrying the metric as
/// a non-negative number (timing fields are negative when unavailable).
std::map<std::string, double> indexRows(const JsonValue &Root,
                                        const std::string &Metric) {
  std::map<std::string, double> Out;
  const JsonValue *Results = Root.find("results");
  if (!Results || !Results->isArray())
    return Out;
  for (const JsonValue &Row : Results->Elements) {
    const JsonValue *Bench = Row.find("bench");
    const JsonValue *Config = Row.find("config");
    const JsonValue *Value = findMetric(Row, Metric);
    if (!Bench || !Bench->isString() || !Config || !Config->isString() ||
        !Value || !Value->isNumber() || Value->NumberValue < 0.0)
      continue;
    Out[Bench->StringValue + "/" + Config->StringValue] =
        Value->NumberValue;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--metric" && I + 1 < Argc) {
      Opts.Metric = Argv[++I];
    } else if (Arg == "--threshold" && I + 1 < Argc) {
      Opts.Threshold = std::atof(Argv[++I]);
    } else if (Arg == "--higher-better") {
      Opts.HigherBetter = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "ltp-bench-diff: unknown option %s\n",
                   Arg.c_str());
      usage(Argv[0]);
      return 2;
    } else if (Opts.BaselinePath.empty()) {
      Opts.BaselinePath = Arg;
    } else if (Opts.CurrentPath.empty()) {
      Opts.CurrentPath = Arg;
    } else {
      usage(Argv[0]);
      return 2;
    }
  }
  if (Opts.CurrentPath.empty() || Opts.Threshold <= 0.0) {
    usage(Argv[0]);
    return 2;
  }

  std::unique_ptr<JsonValue> Baseline = loadReport(Opts.BaselinePath);
  std::unique_ptr<JsonValue> Current = loadReport(Opts.CurrentPath);
  if (!Baseline || !Current)
    return 0; // environment skip on either side: nothing to gate

  std::map<std::string, double> Base = indexRows(*Baseline, Opts.Metric);
  std::map<std::string, double> Cur = indexRows(*Current, Opts.Metric);
  if (Base.empty()) {
    std::fprintf(stderr,
                 "ltp-bench-diff: baseline %s has no rows with metric "
                 "'%s' — wrong --metric or stale baseline?\n",
                 Opts.BaselinePath.c_str(), Opts.Metric.c_str());
    return 2;
  }

  int Regressions = 0;
  int Compared = 0;
  for (const auto &[Key, BaseValue] : Base) {
    auto It = Cur.find(Key);
    if (It == Cur.end()) {
      std::printf("  missing  %-28s (in baseline only)\n", Key.c_str());
      continue;
    }
    ++Compared;
    double CurValue = It->second;
    // Relative change in the "worse" direction; negative = improved.
    double Regress = BaseValue > 0.0
                         ? (Opts.HigherBetter
                                ? (BaseValue - CurValue) / BaseValue
                                : (CurValue - BaseValue) / BaseValue)
                         : 0.0;
    bool Bad = Regress > Opts.Threshold;
    std::printf("  %-8s %-28s %s: %.6g -> %.6g (%+.1f%%)\n",
                Bad ? "REGRESS" : (Regress < 0.0 ? "improve" : "ok"),
                Key.c_str(), Opts.Metric.c_str(), BaseValue, CurValue,
                (Opts.HigherBetter ? -Regress : Regress) * 100.0);
    if (Bad)
      ++Regressions;
  }
  for (const auto &[Key, Value] : Cur)
    if (!Base.count(Key))
      std::printf("  new      %-28s %s: %.6g\n", Key.c_str(),
                  Opts.Metric.c_str(), Value);

  if (Compared == 0) {
    std::fprintf(stderr, "ltp-bench-diff: no comparable rows\n");
    return 2;
  }
  if (Regressions) {
    std::fprintf(stderr,
                 "ltp-bench-diff: %d row(s) regressed more than %.0f%% "
                 "on '%s'\n",
                 Regressions, Opts.Threshold * 100.0,
                 Opts.Metric.c_str());
    return 1;
  }
  std::printf("ltp-bench-diff: %d row(s) within %.0f%% of baseline\n",
              Compared, Opts.Threshold * 100.0);
  return 0;
}
